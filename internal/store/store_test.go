package store

import (
	"errors"
	"sync"
	"testing"

	"hyperfile/internal/object"
)

func TestNewObjectAllocatesUniqueIDs(t *testing.T) {
	s := New(3)
	seen := map[object.ID]bool{}
	for i := 0; i < 100; i++ {
		o := s.NewObject()
		if o.ID.Birth != 3 {
			t.Fatalf("birth site = %v, want s3", o.ID.Birth)
		}
		if seen[o.ID] {
			t.Fatalf("duplicate id %v", o.ID)
		}
		seen[o.ID] = true
	}
}

func TestPutGetDelete(t *testing.T) {
	s := New(1)
	o := s.NewObject().Add("String", object.String("Title"), object.String("doc"))
	if err := s.Put(o); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(o.ID)
	if !ok {
		t.Fatal("Get after Put failed")
	}
	if len(got.Tuples) != 1 || got.Tuples[0].Data.Str != "doc" {
		t.Errorf("stored object = %v", got)
	}
	// Put clones: mutating the original must not affect the store.
	o.Tuples[0].Data = object.String("mutated")
	got, _ = s.Get(o.ID)
	if got.Tuples[0].Data.Str != "doc" {
		t.Errorf("store aliases caller's object")
	}
	if !s.Delete(o.ID) {
		t.Error("Delete returned false for present object")
	}
	if s.Delete(o.ID) {
		t.Error("Delete returned true for absent object")
	}
	if _, ok := s.Get(o.ID); ok {
		t.Error("Get after Delete succeeded")
	}
}

func TestInsertConvenience(t *testing.T) {
	s := New(1)
	id, err := s.Insert([]object.Tuple{{Type: "keyword", Key: object.Keyword("db"), Data: object.Value{}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(id); !ok {
		t.Error("inserted object missing")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestLargeDataSpill(t *testing.T) {
	s := New(1, WithLargeThreshold(10))
	big := make([]byte, 100)
	for i := range big {
		big[i] = byte(i)
	}
	o := s.NewObject().
		Add("Text", object.String("body"), object.Bytes(big)).
		Add("Text", object.String("small"), object.Bytes([]byte("tiny")))
	if err := s.Put(o); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Get(o.ID)
	if len(got.Tuples[0].Data.Bytes) != 0 {
		t.Errorf("large field not stubbed in search representation")
	}
	if string(got.Tuples[1].Data.Bytes) != "tiny" {
		t.Errorf("small field should stay inline")
	}
	if s.DiskReads() != 0 {
		t.Errorf("no disk reads expected before retrieval")
	}
	v, err := s.FetchData(o.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Bytes) != 100 || v.Bytes[42] != 42 {
		t.Errorf("FetchData returned wrong blob")
	}
	if s.DiskReads() != 1 {
		t.Errorf("DiskReads = %d, want 1", s.DiskReads())
	}
	// Inline field fetch does not count as a disk read.
	if _, err := s.FetchData(o.ID, 1); err != nil {
		t.Fatal(err)
	}
	if s.DiskReads() != 1 {
		t.Errorf("DiskReads = %d after inline fetch, want 1", s.DiskReads())
	}
}

func TestFetchDataErrors(t *testing.T) {
	s := New(1)
	if _, err := s.FetchData(object.ID{Birth: 1, Seq: 99}, 0); !errors.Is(err, ErrNotFound) {
		t.Errorf("FetchData missing object: %v", err)
	}
	o := s.NewObject().Add("a", object.Value{}, object.Value{})
	if err := s.Put(o); err != nil {
		t.Fatal(err)
	}
	if _, err := s.FetchData(o.ID, 5); err == nil {
		t.Errorf("FetchData out-of-range index: expected error")
	}
}

func TestPutReplacesBlobs(t *testing.T) {
	s := New(1, WithLargeThreshold(4))
	o := s.NewObject().Add("Text", object.String("b"), object.Bytes([]byte("0123456789")))
	if err := s.Put(o); err != nil {
		t.Fatal(err)
	}
	// Replace with a version without the blob.
	o2 := object.New(o.ID).Add("String", object.String("t"), object.String("x"))
	if err := s.Put(o2); err != nil {
		t.Fatal(err)
	}
	if len(s.blobs) != 0 {
		t.Errorf("stale blobs left after replace: %d", len(s.blobs))
	}
}

func TestRemoveAndMigrate(t *testing.T) {
	src := New(1, WithLargeThreshold(4))
	dst := New(2)
	o := src.NewObject().Add("Text", object.String("body"), object.Bytes([]byte("0123456789")))
	if err := src.Put(o); err != nil {
		t.Fatal(err)
	}
	full, err := src.Remove(o.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(full.Tuples[0].Data.Bytes) != "0123456789" {
		t.Errorf("Remove lost spilled data: %v", full.Tuples[0].Data)
	}
	if _, ok := src.Get(o.ID); ok {
		t.Error("object still present after Remove")
	}
	if err := dst.PutForeign(full); err != nil {
		t.Fatal(err)
	}
	if _, ok := dst.Get(o.ID); !ok {
		t.Error("migrated object missing at destination")
	}
	if _, err := src.Remove(o.ID); !errors.Is(err, ErrNotFound) {
		t.Errorf("second Remove: %v", err)
	}
}

func TestPutForeignRejectsForgedLocalIDs(t *testing.T) {
	s := New(1)
	forged := object.New(object.ID{Birth: 1, Seq: 999})
	if err := s.PutForeign(forged); !errors.Is(err, ErrWrongSite) {
		t.Errorf("PutForeign forged id: %v", err)
	}
}

func TestPutRejectsNilID(t *testing.T) {
	s := New(1)
	if err := s.Put(object.New(object.NilID)); err == nil {
		t.Error("Put of nil id should fail")
	}
}

func TestIDsSorted(t *testing.T) {
	s := New(1)
	var want []object.ID
	for i := 0; i < 5; i++ {
		o := s.NewObject()
		want = append(want, o.ID)
		if err := s.Put(o); err != nil {
			t.Fatal(err)
		}
	}
	got := s.IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("IDs[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMakeSet(t *testing.T) {
	s := New(1)
	a := s.NewObject()
	b := s.NewObject()
	for _, o := range []*object.Object{a, b} {
		if err := s.Put(o); err != nil {
			t.Fatal(err)
		}
	}
	setID, err := s.MakeSet("Member", []object.ID{a.ID, b.ID})
	if err != nil {
		t.Fatal(err)
	}
	set, ok := s.Get(setID)
	if !ok {
		t.Fatal("set object missing")
	}
	ptrs := set.Pointers("Pointer", "Member")
	if len(ptrs) != 2 {
		t.Errorf("set members = %v", ptrs)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New(1)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				o := s.NewObject().Add("n", object.Int(int64(i)), object.Value{})
				if err := s.Put(o); err != nil {
					t.Error(err)
					return
				}
				if _, ok := s.Get(o.ID); !ok {
					t.Error("lost own write")
					return
				}
				s.IDs()
				s.Len()
			}
		}()
	}
	wg.Wait()
	if s.Len() != 400 {
		t.Errorf("Len = %d, want 400", s.Len())
	}
}
