// Package store implements a HyperFile site's main-memory object store.
//
// Following the prototype in the paper (section 5), all search information —
// tuples with pointers, keywords, numbers, and short strings — is kept in
// memory, while large opaque data items are kept out of the search path on
// simulated "disk": a query never touches them unless it explicitly retrieves
// a large field with the "->" operator, in which case a disk read is counted.
package store

import (
	"errors"
	"fmt"
	"sync"

	"hyperfile/internal/object"
)

// DefaultLargeThreshold is the byte size above which an opaque data field is
// spilled out of the in-memory search representation.
const DefaultLargeThreshold = 4096

// ErrNotFound is returned when an object id has no local object.
var ErrNotFound = errors.New("store: object not found")

// ErrWrongSite is returned when storing an object whose id was allocated by a
// different store.
var ErrWrongSite = errors.New("store: object born at a different site")

// blobKey addresses one spilled data field.
type blobKey struct {
	id    object.ID
	tuple int
}

// TupleIndex is a secondary index the store keeps consistent through every
// mutation path (Put, Delete, Remove, migration): Insert is called with each
// stored object's searchable representation, Remove with the previously
// stored version before it is replaced or deleted. Implementations must be
// safe for concurrent use and must not call back into the store.
// *index.Keyword implements it.
type TupleIndex interface {
	Insert(*object.Object)
	Remove(*object.Object)
}

// Store is a thread-safe main-memory object store for one site.
// The zero value is not usable; use New.
type Store struct {
	mu      sync.RWMutex
	site    object.SiteID
	seq     uint64
	objects map[object.ID]*object.Object
	blobs   map[blobKey][]byte
	index   TupleIndex

	largeThreshold int
	diskReads      int
}

// Option configures a Store.
type Option func(*Store)

// WithLargeThreshold overrides the blob-spill threshold. A threshold of 0
// disables spilling entirely.
func WithLargeThreshold(n int) Option {
	return func(s *Store) { s.largeThreshold = n }
}

// New returns an empty store for the given site.
func New(site object.SiteID, opts ...Option) *Store {
	s := &Store{
		site:           site,
		objects:        make(map[object.ID]*object.Object),
		blobs:          make(map[blobKey][]byte),
		largeThreshold: DefaultLargeThreshold,
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Site returns the site this store belongs to.
func (s *Store) Site() object.SiteID { return s.site }

// AttachIndex installs a secondary index and backfills it with every object
// currently stored. From then on the store keeps the index consistent
// through Put, Delete, and Remove. Attaching nil detaches. Only one index
// can be attached.
func (s *Store) AttachIndex(ix TupleIndex) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.index = ix
	if ix == nil {
		return
	}
	for _, o := range s.objects {
		ix.Insert(o)
	}
}

// NewObject allocates a fresh object born at this site.
func (s *Store) NewObject() *object.Object {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	return object.New(object.ID{Birth: s.site, Seq: s.seq})
}

// Put stores (or replaces) an object. Large opaque data fields are spilled to
// the blob area and replaced in the search representation by empty stubs.
// The object is cloned, so the caller may keep mutating its copy.
func (s *Store) Put(o *object.Object) error {
	if o.ID.IsNil() {
		return fmt.Errorf("store: %w", errors.New("nil object id"))
	}
	c := o.Clone()
	s.mu.Lock()
	defer s.mu.Unlock()
	// Drop blobs from any previous version of this object.
	s.dropBlobsLocked(c.ID)
	for i := range c.Tuples {
		d := &c.Tuples[i].Data
		if s.largeThreshold > 0 && d.Kind == object.KindBytes && len(d.Bytes) > s.largeThreshold {
			s.blobs[blobKey{c.ID, i}] = d.Bytes
			*d = object.Value{Kind: object.KindBytes} // stub: zero-length, spilled
		}
	}
	if s.index != nil {
		if old, ok := s.objects[c.ID]; ok {
			s.index.Remove(old)
		}
		s.index.Insert(c)
	}
	s.objects[c.ID] = c
	return nil
}

// AllocIDs allocates n fresh ids born at this site under one lock
// acquisition. It is the bulk twin of NewObject, for generators that wire
// pointer graphs before storing anything.
func (s *Store) AllocIDs(n int) []object.ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]object.ID, n)
	for i := range ids {
		s.seq++
		ids[i] = object.ID{Birth: s.site, Seq: s.seq}
	}
	return ids
}

// BulkLoad stores a batch of objects under one lock acquisition, taking
// ownership of the objects instead of cloning them — the caller must not
// touch them afterwards. Large data fields spill exactly as in Put. It is
// the scale-out loading path: a million-object scenario dataset loads in
// seconds where per-object Put (lock, clone, insert) takes minutes.
func (s *Store) BulkLoad(objs []*object.Object) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, o := range objs {
		if o.ID.IsNil() {
			return fmt.Errorf("store: %w", errors.New("nil object id"))
		}
		s.dropBlobsLocked(o.ID)
		for i := range o.Tuples {
			d := &o.Tuples[i].Data
			if s.largeThreshold > 0 && d.Kind == object.KindBytes && len(d.Bytes) > s.largeThreshold {
				s.blobs[blobKey{o.ID, i}] = d.Bytes
				*d = object.Value{Kind: object.KindBytes} // stub: zero-length, spilled
			}
		}
		if s.index != nil {
			if old, ok := s.objects[o.ID]; ok {
				s.index.Remove(old)
			}
			s.index.Insert(o)
		}
		s.objects[o.ID] = o
	}
	return nil
}

// Insert allocates a fresh id at this site for the tuples of o, stores the
// object, and returns its id. It is a convenience combining NewObject + Put.
func (s *Store) Insert(tuples []object.Tuple) (object.ID, error) {
	o := s.NewObject()
	o.Tuples = tuples
	if err := s.Put(o); err != nil {
		return object.NilID, err
	}
	return o.ID, nil
}

// Get returns the searchable representation of an object (large data fields
// appear as empty stubs). The returned object is shared; callers must not
// mutate it.
func (s *Store) Get(id object.ID) (*object.Object, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	o, ok := s.objects[id]
	return o, ok
}

// FetchData returns the full data value of tuple index i of the object,
// reading spilled blobs from "disk" (and counting the read).
func (s *Store) FetchData(id object.ID, i int) (object.Value, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[id]
	if !ok {
		return object.Value{}, fmt.Errorf("%w: %v", ErrNotFound, id)
	}
	if i < 0 || i >= len(o.Tuples) {
		return object.Value{}, fmt.Errorf("store: tuple index %d out of range for %v", i, id)
	}
	if b, ok := s.blobs[blobKey{id, i}]; ok {
		s.diskReads++
		return object.Bytes(b), nil
	}
	return o.Tuples[i].Data, nil
}

// GetFull returns a copy of the object with all spilled data fields
// materialized from "disk" (each spilled field counts as a disk read). It is
// what a file-interface server must ship when the client asks for the whole
// object.
func (s *Store) GetFull(id object.ID) (*object.Object, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[id]
	if !ok {
		return nil, false
	}
	full := o.Clone()
	for i := range full.Tuples {
		if b, ok := s.blobs[blobKey{id, i}]; ok {
			full.Tuples[i].Data = object.Bytes(b)
			s.diskReads++
		}
	}
	return full, true
}

// Delete removes an object and its blobs, reporting whether it existed.
func (s *Store) Delete(id object.ID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[id]
	if !ok {
		return false
	}
	if s.index != nil {
		s.index.Remove(o)
	}
	delete(s.objects, id)
	s.dropBlobsLocked(id)
	return true
}

func (s *Store) dropBlobsLocked(id object.ID) {
	for k := range s.blobs {
		if k.id == id {
			delete(s.blobs, k)
		}
	}
}

// Remove extracts an object with its full (unspilled) data for migration to
// another site, deleting it locally.
func (s *Store) Remove(id object.ID) (*object.Object, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[id]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNotFound, id)
	}
	full := o.Clone()
	for i := range full.Tuples {
		if b, ok := s.blobs[blobKey{id, i}]; ok {
			full.Tuples[i].Data = object.Bytes(b)
		}
	}
	if s.index != nil {
		s.index.Remove(o)
	}
	delete(s.objects, id)
	s.dropBlobsLocked(id)
	return full, nil
}

// PutForeign stores an object born elsewhere (a migrated object). Unlike
// Put it refuses ids born at this site that were never allocated here, to
// catch id-forging bugs early; locally-born ids are accepted if in range.
func (s *Store) PutForeign(o *object.Object) error {
	s.mu.Lock()
	inRange := o.ID.Birth != s.site || o.ID.Seq <= s.seq
	s.mu.Unlock()
	if !inRange {
		return fmt.Errorf("%w: %v (seq beyond allocation)", ErrWrongSite, o.ID)
	}
	return s.Put(o)
}

// Len returns the number of stored objects.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.objects)
}

// IDs returns all stored ids in sorted order.
func (s *Store) IDs() []object.ID {
	s.mu.RLock()
	set := make(object.IDSet, len(s.objects))
	for id := range s.objects {
		set.Add(id)
	}
	s.mu.RUnlock()
	return set.Sorted()
}

// DiskReads returns how many spilled blobs have been fetched.
func (s *Store) DiskReads() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.diskReads
}

// MakeSet materializes a set of objects as a HyperFile object: an object
// whose tuples are pointers to the members (paper section 2: "a set of
// objects is created using a basic object, with tuples containing pointers to
// the objects in the set"). It returns the new set object's id.
func (s *Store) MakeSet(key string, members []object.ID) (object.ID, error) {
	o := s.NewObject()
	for _, m := range members {
		o.Add("Pointer", object.String(key), object.Pointer(m))
	}
	if err := s.Put(o); err != nil {
		return object.NilID, err
	}
	return o.ID, nil
}
