package store

import (
	"testing"
	"testing/quick"

	"hyperfile/internal/object"
)

// arbitraryTuples builds tuples from fuzz inputs covering all value kinds.
func arbitraryTuples(types []uint8, strs []string, nums []int64) []object.Tuple {
	var out []object.Tuple
	n := len(types)
	if len(strs) < n {
		n = len(strs)
	}
	if len(nums) < n {
		n = len(nums)
	}
	for i := 0; i < n; i++ {
		var key, data object.Value
		switch types[i] % 5 {
		case 0:
			key, data = object.String(strs[i]), object.Int(nums[i])
		case 1:
			key, data = object.Keyword(strs[i]), object.Float(float64(nums[i])/3)
		case 2:
			key, data = object.Int(nums[i]), object.Bytes([]byte(strs[i]))
		case 3:
			key = object.String(strs[i])
			data = object.Pointer(object.ID{Birth: 1, Seq: uint64(nums[i])})
		default:
			key, data = object.Value{}, object.Value{}
		}
		out = append(out, object.Tuple{Type: strs[i], Key: key, Data: data})
	}
	return out
}

// Property: anything Put comes back from Get equal (modulo blob spilling,
// disabled here).
func TestQuickPutGetRoundTrip(t *testing.T) {
	s := New(1, WithLargeThreshold(0))
	f := func(types []uint8, strs []string, nums []int64) bool {
		o := s.NewObject()
		o.Tuples = arbitraryTuples(types, strs, nums)
		if err := s.Put(o); err != nil {
			return false
		}
		got, ok := s.Get(o.ID)
		if !ok || len(got.Tuples) != len(o.Tuples) {
			return false
		}
		for i := range o.Tuples {
			if got.Tuples[i].Type != o.Tuples[i].Type ||
				!got.Tuples[i].Key.Equal(o.Tuples[i].Key) ||
				!got.Tuples[i].Data.Equal(o.Tuples[i].Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: spilled blobs always come back byte-identical through FetchData.
func TestQuickSpillRoundTrip(t *testing.T) {
	s := New(1, WithLargeThreshold(8))
	f := func(payload []byte) bool {
		o := s.NewObject().Add("Text", object.String("body"), object.Bytes(payload))
		if err := s.Put(o); err != nil {
			return false
		}
		v, err := s.FetchData(o.ID, 0)
		if err != nil {
			return false
		}
		if len(payload) == 0 {
			return len(v.Bytes) == 0
		}
		if len(v.Bytes) != len(payload) {
			return false
		}
		for i := range payload {
			if v.Bytes[i] != payload[i] {
				return false
			}
		}
		// The search representation must hide large payloads entirely.
		got, _ := s.Get(o.ID)
		if len(payload) > 8 && len(got.Tuples[0].Data.Bytes) != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGetFullMaterializesEverything(t *testing.T) {
	s := New(1, WithLargeThreshold(4))
	big1 := []byte("0123456789")
	big2 := []byte("abcdefghij")
	o := s.NewObject().
		Add("Text", object.String("a"), object.Bytes(big1)).
		Add("String", object.String("t"), object.String("x")).
		Add("Text", object.String("b"), object.Bytes(big2))
	if err := s.Put(o); err != nil {
		t.Fatal(err)
	}
	full, ok := s.GetFull(o.ID)
	if !ok {
		t.Fatal("missing")
	}
	if string(full.Tuples[0].Data.Bytes) != string(big1) ||
		string(full.Tuples[2].Data.Bytes) != string(big2) {
		t.Errorf("blobs not materialized: %v", full)
	}
	if s.DiskReads() != 2 {
		t.Errorf("disk reads = %d, want 2", s.DiskReads())
	}
	if _, ok := s.GetFull(object.ID{Birth: 1, Seq: 999}); ok {
		t.Error("GetFull of missing object succeeded")
	}
}
