package store

import (
	"fmt"
	"io"

	"hyperfile/internal/dump"
	"hyperfile/internal/object"
)

// Snapshot writes every object — with spilled data materialized — to w in
// the JSON-lines dataset format, so a server can persist its state and
// reload it at startup (the archival-server role of the paper's
// introduction). Objects are written in id order for stable output.
func (s *Store) Snapshot(w io.Writer) error {
	ids := s.IDs()
	objs := make([]*object.Object, 0, len(ids))
	for _, id := range ids {
		if o, ok := s.GetFull(id); ok {
			objs = append(objs, o)
		}
	}
	return dump.Write(w, objs)
}

// Restore loads a snapshot produced by Snapshot (or hfgen) into the store.
// Objects born at this site advance the id allocator so later NewObject
// calls never collide with restored ids.
func (s *Store) Restore(r io.Reader) error {
	objs, err := dump.Read(r)
	if err != nil {
		return fmt.Errorf("store: restore: %w", err)
	}
	var maxSeq uint64
	for _, o := range objs {
		if o.ID.Birth == s.site && o.ID.Seq > maxSeq {
			maxSeq = o.ID.Seq
		}
	}
	s.mu.Lock()
	if s.seq < maxSeq {
		s.seq = maxSeq
	}
	s.mu.Unlock()
	for _, o := range objs {
		if err := s.Put(o); err != nil {
			return fmt.Errorf("store: restore %v: %w", o.ID, err)
		}
	}
	return nil
}
