package store

import (
	"bytes"
	"testing"

	"hyperfile/internal/object"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	src := New(1, WithLargeThreshold(8))
	big := make([]byte, 100)
	for i := range big {
		big[i] = byte(i)
	}
	a := src.NewObject().
		Add("String", object.String("Title"), object.String("doc")).
		Add("Text", object.String("body"), object.Bytes(big))
	b := src.NewObject().Add("keyword", object.Keyword("k"), object.Value{})
	a.Add("Pointer", object.String("Ref"), object.Pointer(b.ID))
	for _, o := range []*object.Object{a, b} {
		if err := src.Put(o); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := src.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	dst := New(1, WithLargeThreshold(8))
	if err := dst.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 2 {
		t.Fatalf("restored %d objects", dst.Len())
	}
	// Spilled payload survives the round trip.
	v, err := dst.FetchData(a.ID, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Bytes) != 100 || v.Bytes[42] != 42 {
		t.Errorf("payload lost: %v", v)
	}
	// The allocator resumes beyond restored ids.
	fresh := dst.NewObject()
	if fresh.ID.Seq <= b.ID.Seq {
		t.Errorf("allocator collided: fresh %v vs restored max %v", fresh.ID, b.ID)
	}
}

func TestRestoreBadData(t *testing.T) {
	dst := New(1)
	if err := dst.Restore(bytes.NewBufferString("{garbage")); err == nil {
		t.Error("expected error")
	}
}

func TestSnapshotEmptyStore(t *testing.T) {
	var buf bytes.Buffer
	if err := New(1).Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dst := New(1)
	if err := dst.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 0 {
		t.Errorf("restored %d objects from empty snapshot", dst.Len())
	}
}
