package engine

import (
	"math/rand"
	"testing"

	"hyperfile/internal/object"
	"hyperfile/internal/query"
	"hyperfile/internal/store"
)

// buildChain stores a cyclic chain o1 -> o2 -> ... -> on -> o1 of n objects
// linked by (Pointer, "Reference") tuples, each also carrying a keyword
// tuple, and returns the ids in chain order. The chain wraps so that every
// object has an outgoing pointer: under the paper's literal semantics an
// object with no matching pointer tuple fails the selection filter inside a
// closure body and is dropped before any later keyword check.
func buildChain(t *testing.T, s *store.Store, n int, keyword string) []object.ID {
	t.Helper()
	objs := make([]*object.Object, n)
	for i := range objs {
		objs[i] = s.NewObject()
	}
	for i, o := range objs {
		o.Add("keyword", object.Keyword(keyword), object.Value{})
		o.Add("Pointer", object.String("Reference"), object.Pointer(objs[(i+1)%n].ID))
		if err := s.Put(o); err != nil {
			t.Fatal(err)
		}
	}
	ids := make([]object.ID, n)
	for i, o := range objs {
		ids[i] = o.ID
	}
	return ids
}

func run(t *testing.T, s *store.Store, src string, initial ...object.ID) (object.IDSet, *Engine) {
	t.Helper()
	c, err := query.Compile(query.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	e := New(c, s)
	e.AddInitial(initial...)
	e.Run()
	return e.Results(), e
}

// TestPaperBoundedIterationExample reproduces the worked example of section
// 3.1: chain A->B->C->D, iterator bound 3; the query must return objects with
// the keyword among {A, B, C} and never examine D ("4 levels deep").
func TestPaperBoundedIterationExample(t *testing.T) {
	s := store.New(1)
	ids := buildChain(t, s, 4, "Distributed")
	res, e := run(t, s,
		`S [ (Pointer, "Reference", ?X) ^^X ]*3 (keyword, "Distributed", ?) -> T`,
		ids[0])
	want := object.NewIDSet(ids[0], ids[1], ids[2])
	if !res.Equal(want) {
		t.Errorf("results = %v, want %v", res, want)
	}
	if e.Stats().Processed != 3 {
		t.Errorf("processed %d objects, want 3 (D must not be examined)", e.Stats().Processed)
	}
}

func TestClosureTraversesWholeChain(t *testing.T) {
	s := store.New(1)
	ids := buildChain(t, s, 10, "db")
	res, _ := run(t, s,
		`S [ (Pointer, "Reference", ?X) ^^X ]** (keyword, "db", ?) -> T`,
		ids[0])
	if len(res) != 10 {
		t.Errorf("closure returned %d objects, want 10", len(res))
	}
}

func TestClosureTerminatesOnCycle(t *testing.T) {
	s := store.New(1)
	a := s.NewObject()
	b := s.NewObject()
	c := s.NewObject()
	a.Add("Pointer", object.String("Reference"), object.Pointer(b.ID)).
		Add("keyword", object.Keyword("k"), object.Value{})
	b.Add("Pointer", object.String("Reference"), object.Pointer(c.ID)).
		Add("keyword", object.Keyword("k"), object.Value{})
	c.Add("Pointer", object.String("Reference"), object.Pointer(a.ID)). // cycle
										Add("keyword", object.Keyword("k"), object.Value{})
	for _, o := range []*object.Object{a, b, c} {
		if err := s.Put(o); err != nil {
			t.Fatal(err)
		}
	}
	res, e := run(t, s,
		`S [ (Pointer, "Reference", ?X) ^^X ]** (keyword, "k", ?) -> T`,
		a.ID)
	if len(res) != 3 {
		t.Errorf("results = %v, want all 3", res)
	}
	// The cycle generates duplicate working-set entries which must be
	// suppressed by the mark table, not processed forever.
	if e.Stats().Skipped == 0 {
		t.Errorf("expected duplicate suppression on the cycle")
	}
}

func TestSelectionFiltering(t *testing.T) {
	s := store.New(1)
	match := s.NewObject().Add("String", object.String("Author"), object.String("Joe Programmer"))
	other := s.NewObject().Add("String", object.String("Author"), object.String("Someone Else"))
	for _, o := range []*object.Object{match, other} {
		if err := s.Put(o); err != nil {
			t.Fatal(err)
		}
	}
	res, _ := run(t, s, `S (String, "Author", "Joe Programmer") -> T`, match.ID, other.ID)
	if !res.Equal(object.NewIDSet(match.ID)) {
		t.Errorf("results = %v", res)
	}
}

// TestDerefKeepVsDrop checks the ⇑⇑ (keep both) vs ⇑ (referenced only)
// distinction: with ^X the pointing object must not reach the result set.
func TestDerefKeepVsDrop(t *testing.T) {
	s := store.New(1)
	callee := s.NewObject().Add("String", object.String("Author"), object.String("Joe"))
	caller := s.NewObject().
		Add("String", object.String("Author"), object.String("Joe")).
		Add("Pointer", object.String("Called Routine"), object.Pointer(callee.ID))
	for _, o := range []*object.Object{callee, caller} {
		if err := s.Put(o); err != nil {
			t.Fatal(err)
		}
	}

	resKeep, _ := run(t, s,
		`S (Pointer, "Called Routine", ?X) ^^X (String, "Author", "Joe") -> T`,
		caller.ID)
	if !resKeep.Equal(object.NewIDSet(caller.ID, callee.ID)) {
		t.Errorf("^^ results = %v, want both", resKeep)
	}

	resDrop, _ := run(t, s,
		`S (Pointer, "Called Routine", ?X) ^X (String, "Author", "Joe") -> T`,
		caller.ID)
	if !resDrop.Equal(object.NewIDSet(callee.ID)) {
		t.Errorf("^ results = %v, want callee only", resDrop)
	}
}

// TestMarkTableStartRefinement reproduces the paper's subtlety: an object
// that failed filter F1 must still be processed when reached later by a
// dereference that starts it at F3.
func TestMarkTableStartRefinement(t *testing.T) {
	s := store.New(1)
	// O fails the first selection but carries the keyword checked after the
	// dereference stage.
	o := s.NewObject().Add("keyword", object.Keyword("wanted"), object.Value{})
	// P passes the first selection and points at O.
	p := s.NewObject().
		Add("String", object.String("class"), object.String("hub")).
		Add("Pointer", object.String("Link"), object.Pointer(o.ID)).
		Add("keyword", object.Keyword("wanted"), object.Value{})
	for _, ob := range []*object.Object{o, p} {
		if err := s.Put(ob); err != nil {
			t.Fatal(err)
		}
	}
	// Both O and P are in the initial set. O fails F1 (and is marked at 0);
	// P's dereference re-introduces O starting at F3 where it must pass.
	res, _ := run(t, s,
		`S (String, "class", "hub") (Pointer, "Link", ?X) ^^X (keyword, "wanted", ?) -> T`,
		o.ID, p.ID)
	if !res.Equal(object.NewIDSet(o.ID, p.ID)) {
		t.Errorf("results = %v, want O rescued via deref", res)
	}
}

func TestNestedIterators(t *testing.T) {
	s := store.New(1)
	// a --outer--> b; b --inner--> c --inner--> d (inner bound 2 allows b,c
	// chains; d is at inner chain length 3 from b).
	d := s.NewObject().Add("keyword", object.Keyword("k"), object.Value{})
	c := s.NewObject().Add("keyword", object.Keyword("k"), object.Value{}).
		Add("Pointer", object.String("inner"), object.Pointer(d.ID))
	b := s.NewObject().Add("keyword", object.Keyword("k"), object.Value{}).
		Add("Pointer", object.String("inner"), object.Pointer(c.ID))
	// a needs an "inner" pointer too: under literal semantics an object with
	// no tuple matching the inner selection dies inside the inner body.
	a := s.NewObject().Add("keyword", object.Keyword("k"), object.Value{}).
		Add("Pointer", object.String("outer"), object.Pointer(b.ID)).
		Add("Pointer", object.String("inner"), object.Pointer(b.ID))
	for _, o := range []*object.Object{a, b, c, d} {
		if err := s.Put(o); err != nil {
			t.Fatal(err)
		}
	}
	res, _ := run(t, s,
		`S [ (Pointer, "outer", ?X) ^^X [ (Pointer, "inner", ?Y) ^^Y ]*2 ]*2 (keyword, "k", ?) -> T`,
		a.ID)
	// a passes; b via outer; c via inner chain length 2; d would need inner
	// chain length 3 > 2, so c exits the inner iterator by count without
	// re-entering the body and d is never even created.
	want := object.NewIDSet(a.ID, b.ID, c.ID)
	if !res.Equal(want) {
		t.Errorf("results = %v, want %v", res, want)
	}
}

func TestMatchingVariableJoin(t *testing.T) {
	s := store.New(1)
	// Find modules maintained by one of their own authors.
	good := s.NewObject().
		Add("String", object.String("Author"), object.String("ann")).
		Add("String", object.String("Maintainer"), object.String("ann"))
	bad := s.NewObject().
		Add("String", object.String("Author"), object.String("bob")).
		Add("String", object.String("Maintainer"), object.String("eve"))
	for _, o := range []*object.Object{good, bad} {
		if err := s.Put(o); err != nil {
			t.Fatal(err)
		}
	}
	res, _ := run(t, s,
		`S (String, "Author", ?A) (String, "Maintainer", $A) -> T`,
		good.ID, bad.ID)
	if !res.Equal(object.NewIDSet(good.ID)) {
		t.Errorf("results = %v", res)
	}
}

func TestFetchRetrieval(t *testing.T) {
	s := store.New(1)
	o := s.NewObject().
		Add("String", object.String("Author"), object.String("Chris Clifton")).
		Add("String", object.String("Title"), object.String("HyperFile"))
	if err := s.Put(o); err != nil {
		t.Fatal(err)
	}
	_, e := run(t, s,
		`S (String, "Author", "Chris Clifton") (String, "Title", ->title) -> T`,
		o.ID)
	_, fetches := e.TakeResults()
	if len(fetches) != 1 {
		t.Fatalf("fetches = %v", fetches)
	}
	f := fetches[0]
	if f.Var != "title" || f.From != o.ID || f.Val.Str != "HyperFile" {
		t.Errorf("fetch = %+v", f)
	}
	if e.Stats().Fetched != 1 {
		t.Errorf("Fetched = %d", e.Stats().Fetched)
	}
}

func TestRemoteRefsSurfaced(t *testing.T) {
	s := store.New(1)
	remoteID := object.ID{Birth: 2, Seq: 1}
	local := s.NewObject().
		Add("Pointer", object.String("Reference"), object.Pointer(remoteID)).
		Add("keyword", object.Keyword("k"), object.Value{})
	if err := s.Put(local); err != nil {
		t.Fatal(err)
	}
	c := query.MustCompile(`S [ (Pointer, "Reference", ?X) ^^X ]** (keyword, "k", ?) -> T`)
	e := New(c, s, WithLocator(birthLocator(1)))
	e.AddInitial(local.ID)

	var remote []RemoteRef
	for {
		step, ok := e.Step()
		if !ok {
			break
		}
		remote = append(remote, step.Remote...)
	}
	if len(remote) != 1 {
		t.Fatalf("remote refs = %v, want 1", remote)
	}
	r := remote[0]
	if r.ID != remoteID {
		t.Errorf("remote id = %v", r.ID)
	}
	if r.Start != 2 {
		t.Errorf("remote start = %d, want 2 (filter after the deref)", r.Start)
	}
	if len(r.Iters) != 1 || r.Iters[0] != 2 {
		t.Errorf("remote iters = %v, want [2]", r.Iters)
	}
	if e.Stats().RemoteDerefs != 1 {
		t.Errorf("RemoteDerefs = %d", e.Stats().RemoteDerefs)
	}
}

// birthLocator treats ids as local when their birth site matches.
type birthLocator object.SiteID

func (b birthLocator) IsLocal(id object.ID) bool { return id.Birth == object.SiteID(b) }

func TestEnqueueRemoteArrival(t *testing.T) {
	s := store.New(2)
	o := s.NewObject().Add("keyword", object.Keyword("k"), object.Value{})
	// Self-pointer so that o survives the closure body's selection when it
	// loops back (literal semantics).
	o.Add("Pointer", object.String("Reference"), object.Pointer(o.ID))
	if err := s.Put(o); err != nil {
		t.Fatal(err)
	}
	c := query.MustCompile(`S [ (Pointer, "Reference", ?X) ^^X ]** (keyword, "k", ?) -> T`)
	e := New(c, s, WithLocator(birthLocator(2)))
	// Simulate a Deref message arriving: start after the deref (=2), chain
	// length 2.
	e.Enqueue(Item{ID: o.ID, Start: 2, Iters: []int{2}})
	e.Run()
	if !e.Results().Equal(object.NewIDSet(o.ID)) {
		t.Errorf("results = %v", e.Results())
	}
}

func TestMissingObjectsAreDropped(t *testing.T) {
	s := store.New(1)
	res, e := run(t, s, `S (keyword, "k", ?) -> T`, object.ID{Birth: 1, Seq: 77})
	if len(res) != 0 {
		t.Errorf("results = %v, want empty", res)
	}
	if e.Stats().Missing != 1 {
		t.Errorf("Missing = %d", e.Stats().Missing)
	}
}

func TestTakeResultsResets(t *testing.T) {
	s := store.New(1)
	o := s.NewObject().Add("keyword", object.Keyword("k"), object.Value{})
	if err := s.Put(o); err != nil {
		t.Fatal(err)
	}
	_, e := run(t, s, `S (keyword, "k", ?) -> T`, o.ID)
	r1, _ := e.TakeResults()
	if len(r1) != 1 {
		t.Fatalf("first TakeResults = %v", r1)
	}
	r2, _ := e.TakeResults()
	if len(r2) != 0 {
		t.Errorf("second TakeResults = %v, want empty", r2)
	}
}

// TestBFSAndDFSSameResults: the working-set discipline changes the search
// order but never the answer (results are a set).
func TestBFSAndDFSSameResults(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := store.New(1)
	const n = 60
	objs := make([]*object.Object, n)
	for i := range objs {
		objs[i] = s.NewObject()
	}
	for i, o := range objs {
		if rng.Intn(2) == 0 {
			o.Add("keyword", object.Keyword("hot"), object.Value{})
		}
		for j := 0; j < 2; j++ {
			o.Add("Pointer", object.String("Reference"), object.Pointer(objs[rng.Intn(n)].ID))
		}
		_ = i
		if err := s.Put(o); err != nil {
			t.Fatal(err)
		}
	}
	c := query.MustCompile(`S [ (Pointer, "Reference", ?X) ^^X ]** (keyword, "hot", ?) -> T`)
	eb := New(c, s, WithOrder(BFS))
	ed := New(c, s, WithOrder(DFS))
	eb.AddInitial(objs[0].ID)
	ed.AddInitial(objs[0].ID)
	eb.Run()
	ed.Run()
	if !eb.Results().Equal(ed.Results()) {
		t.Errorf("BFS results %v != DFS results %v", eb.Results(), ed.Results())
	}
}

// TestClosureMatchesIndependentBFS is a property test: on random graphs the
// engine's closure query must return exactly the reachable objects carrying
// the keyword, as computed by a plain BFS.
func TestClosureMatchesIndependentBFS(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := store.New(1)
		n := 5 + rng.Intn(40)
		objs := make([]*object.Object, n)
		for i := range objs {
			objs[i] = s.NewObject()
		}
		hot := make([]bool, n)
		adj := make([][]int, n)
		for i, o := range objs {
			if rng.Intn(3) == 0 {
				hot[i] = true
				o.Add("keyword", object.Keyword("hot"), object.Value{})
			}
			deg := rng.Intn(4)
			for j := 0; j < deg; j++ {
				tgt := rng.Intn(n)
				adj[i] = append(adj[i], tgt)
				o.Add("Pointer", object.String("Reference"), object.Pointer(objs[tgt].ID))
			}
			if err := s.Put(o); err != nil {
				t.Fatal(err)
			}
		}
		// Independent reachability. Under the paper's literal semantics an
		// object must also pass the pointer selection when (re)entering the
		// closure body, so pointer-less objects never reach the keyword
		// check: the expected set requires outdegree >= 1.
		want := object.NewIDSet()
		seen := make([]bool, n)
		queue := []int{0}
		seen[0] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			if hot[u] && len(adj[u]) > 0 {
				want.Add(objs[u].ID)
			}
			for _, v := range adj[u] {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
		res, _ := run(t, s,
			`S [ (Pointer, "Reference", ?X) ^^X ]** (keyword, "hot", ?) -> T`,
			objs[0].ID)
		if !res.Equal(want) {
			t.Errorf("seed %d: results = %v, want %v", seed, res, want)
		}
	}
}

// TestIdempotentReprocessing: enqueueing the same initial object twice must
// not duplicate work (set-based results, mark-table suppression).
func TestIdempotentReprocessing(t *testing.T) {
	s := store.New(1)
	o := s.NewObject().Add("keyword", object.Keyword("k"), object.Value{})
	if err := s.Put(o); err != nil {
		t.Fatal(err)
	}
	res, e := run(t, s, `S (keyword, "k", ?) -> T`, o.ID, o.ID)
	if len(res) != 1 {
		t.Errorf("results = %v", res)
	}
	if e.Stats().Processed != 1 || e.Stats().Skipped != 1 {
		t.Errorf("stats = %+v, want 1 processed 1 skipped", e.Stats())
	}
}

func TestRunReturnsDeltaStats(t *testing.T) {
	s := store.New(1)
	ids := buildChain(t, s, 3, "k")
	c := query.MustCompile(`S [ (Pointer, "Reference", ?X) ^^X ]** (keyword, "k", ?) -> T`)
	e := New(c, s)
	e.AddInitial(ids[0])
	first := e.Run()
	// Cyclic 3-chain: all 3 processed and pass; the wrap-around pointer
	// re-spawns the first object, suppressed by the mark table.
	if first.Processed != 3 || first.Results != 3 || first.Skipped != 1 {
		t.Errorf("first run stats = %+v", first)
	}
	e.AddInitial(ids[0]) // duplicate: all marked
	second := e.Run()
	if second.Processed != 0 || second.Skipped != 1 {
		t.Errorf("second run stats = %+v", second)
	}
}

func TestWildcardPointerDeref(t *testing.T) {
	s := store.New(1)
	lib := s.NewObject().Add("String", object.String("Author"), object.String("Joe"))
	callee := s.NewObject().Add("String", object.String("Author"), object.String("Joe"))
	caller := s.NewObject().
		Add("Pointer", object.String("Called Routine"), object.Pointer(callee.ID)).
		Add("Pointer", object.String("Library"), object.Pointer(lib.ID))
	for _, o := range []*object.Object{lib, callee, caller} {
		if err := s.Put(o); err != nil {
			t.Fatal(err)
		}
	}
	// Wildcard key follows both pointer categories (paper: "we could use a
	// wild card in place of the key Called Routine if we wished to follow
	// all pointers, such as the Library pointer").
	res, _ := run(t, s, `S (Pointer, ?, ?X) ^X (String, "Author", "Joe") -> T`, caller.ID)
	if !res.Equal(object.NewIDSet(lib.ID, callee.ID)) {
		t.Errorf("results = %v", res)
	}
}
