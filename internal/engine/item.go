// Package engine executes compiled filtering queries with the algorithm of
// the paper's section 3 (Figure 3): a working set of in-flight objects, the
// filter-evaluation function E, a mark table recording (object, filter-index)
// pairs already processed, and iteration-number stacks for (possibly nested)
// iterators.
//
// The engine is single-site: pointers to non-local objects are not followed
// but surfaced as RemoteRef values so that the site layer can ship the query
// to the owning site ("send the query, not the data").
package engine

import (
	"fmt"

	"hyperfile/internal/object"
	"hyperfile/internal/pattern"
)

// Item is one entry of the working set W: an object id plus the transient
// processing state the paper attaches to objects (O.start, O.next, O.iter#,
// O.mvars). Only id, start, and the iteration stack cross site boundaries;
// next and mvars are reconstructed at the processing site.
type Item struct {
	ID object.ID
	// Start is the first filter (0-based) to process the object: 0 for
	// initial-set objects, the filter after the dereference for objects
	// reached through a pointer.
	Start int
	// Next is the next filter to apply while the item is in flight.
	Next int
	// Iters is the iteration-number stack: Iters[d] is the pointer-chain
	// length within the iterator at nesting depth d+1. Missing entries read
	// as 1 (the initial iteration number).
	Iters []int
	// MVars is the matching-variable binding environment O.mvars; it always
	// starts empty and lives only while the item is being processed.
	MVars pattern.Env
}

// NewItem returns an initial-set item for id (start = next = first filter,
// iteration numbers all 1, no bindings).
func NewItem(id object.ID) Item { return Item{ID: id} }

// iterAt returns the iteration number for counter index d (depth of the
// enclosing iterator), defaulting to 1.
func (it *Item) iterAt(d int) int {
	if d < len(it.Iters) {
		return it.Iters[d]
	}
	return 1
}

// childIters builds the iteration stack for an object dereferenced at static
// nesting depth d: the parent stack normalized to length d (padded with 1s,
// truncated if deeper) with the innermost counter incremented.
func (it *Item) childIters(d int) []int {
	if d == 0 {
		return nil
	}
	s := make([]int, d)
	for i := 0; i < d; i++ {
		s[i] = it.iterAt(i)
	}
	s[d-1]++
	return s
}

// String renders the item for diagnostics.
func (it Item) String() string {
	return fmt.Sprintf("{%v start=%d next=%d iters=%v}", it.ID, it.Start, it.Next, it.Iters)
}

// RemoteRef describes a dereference of a pointer to an object owned by
// another site. The site layer turns it into a Deref message carrying the
// query identity plus exactly the paper's per-object fields: O.id, O.start,
// and O.iter#.
type RemoteRef struct {
	ID    object.ID
	Start int
	Iters []int
}

// Fetch is one retrieved field value (the "->var" operator): the binding
// name, the value, and the object it came from.
type Fetch struct {
	Var  string
	From object.ID
	Val  object.Value
}

// Locator decides whether an object id is stored at the local site. The
// engine follows local pointers itself and surfaces remote ones.
type Locator interface {
	IsLocal(object.ID) bool
}

// AllLocal is a Locator for single-site processing: every id is local.
type AllLocal struct{}

// IsLocal always reports true.
func (AllLocal) IsLocal(object.ID) bool { return true }

// Source supplies objects to the engine; *store.Store implements it.
type Source interface {
	Get(object.ID) (*object.Object, bool)
}

// Order selects the working-set discipline. The choice determines the graph
// search order (paper footnote 4): a FIFO queue gives breadth-first search —
// the best average case per Kapidakis — and a LIFO stack gives depth-first.
type Order uint8

const (
	// BFS processes the working set as a FIFO queue (default).
	BFS Order = iota
	// DFS processes the working set as a LIFO stack.
	DFS
)

// String names the order.
func (o Order) String() string {
	if o == DFS {
		return "dfs"
	}
	return "bfs"
}
