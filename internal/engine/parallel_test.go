package engine

import (
	"math/rand"
	"testing"

	"hyperfile/internal/object"
	"hyperfile/internal/query"
	"hyperfile/internal/store"
)

// randomGraphStore builds a store with a random pointer graph for parallel
// tests.
func randomGraphStore(t testing.TB, n int, seed int64) (*store.Store, []object.ID) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	s := store.New(1)
	objs := make([]*object.Object, n)
	for i := range objs {
		objs[i] = s.NewObject()
	}
	ids := make([]object.ID, n)
	for i, o := range objs {
		ids[i] = o.ID
		if rng.Intn(3) == 0 {
			o.Add("keyword", object.Keyword("hot"), object.Value{})
		}
		o.Add("String", object.String("Title"), object.String("doc"))
		for j := 0; j < 2; j++ {
			o.Add("Pointer", object.String("Reference"), object.Pointer(objs[rng.Intn(n)].ID))
		}
		if err := s.Put(o); err != nil {
			t.Fatal(err)
		}
	}
	return s, ids
}

const parClosure = `S [ (Pointer, "Reference", ?X) ^^X ]** (keyword, "hot", ?) -> T`

// TestParallelMatchesSerial: the multiprocessor mode must produce exactly
// the serial algorithm's result set, for every worker count.
func TestParallelMatchesSerial(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		s, ids := randomGraphStore(t, 80, seed)
		c := query.MustCompile(parClosure)
		serial := New(c, s)
		serial.AddInitial(ids[0])
		serial.Run()
		want := serial.Results()
		for _, workers := range []int{1, 2, 4, 8} {
			got := RunParallel(c, s, workers, []object.ID{ids[0]})
			if !got.Results.Equal(want) {
				t.Errorf("seed %d workers %d: parallel %v != serial %v",
					seed, workers, got.Results, want)
			}
		}
	}
}

func TestParallelFetchesComplete(t *testing.T) {
	s, ids := randomGraphStore(t, 50, 3)
	c := query.MustCompile(`S [ (Pointer, "Reference", ?X) ^^X ]** (keyword, "hot", ?) (String, "Title", ->title) -> T`)
	serial := New(c, s)
	serial.AddInitial(ids[0])
	serial.Run()
	wantResults, wantFetches := serial.TakeResults()

	got := RunParallel(c, s, 4, []object.ID{ids[0]})
	if !got.Results.Equal(wantResults) {
		t.Fatalf("results differ")
	}
	// Every passing object fetched its title exactly once (duplicates are
	// possible in principle under racing processors but the mark table
	// suppresses reprocessing, so counts match the serial run).
	if len(got.Fetches) != len(wantFetches) {
		t.Errorf("fetches = %d, want %d", len(got.Fetches), len(wantFetches))
	}
	seen := make(object.IDSet)
	for _, f := range got.Fetches {
		if f.Var != "title" {
			t.Errorf("fetch var %q", f.Var)
		}
		seen.Add(f.From)
	}
	if !seen.Equal(wantResults) {
		t.Errorf("fetch sources %v != results %v", seen, wantResults)
	}
}

func TestParallelEmptyInitial(t *testing.T) {
	s, _ := randomGraphStore(t, 10, 1)
	c := query.MustCompile(parClosure)
	got := RunParallel(c, s, 4, nil)
	if len(got.Results) != 0 {
		t.Errorf("results = %v", got.Results)
	}
}

func TestParallelSingleWorkerEqualsSerialStats(t *testing.T) {
	s, ids := randomGraphStore(t, 40, 7)
	c := query.MustCompile(parClosure)
	serial := New(c, s)
	serial.AddInitial(ids[0])
	st := serial.Run()
	got := RunParallel(c, s, 1, []object.ID{ids[0]})
	if got.Stats.Processed != st.Processed || got.Stats.Results != st.Results {
		t.Errorf("stats differ: parallel %+v serial %+v", got.Stats, st)
	}
}

func TestParallelWorkersFloor(t *testing.T) {
	s, ids := randomGraphStore(t, 10, 2)
	c := query.MustCompile(parClosure)
	got := RunParallel(c, s, 0, []object.ID{ids[0]})
	if got.Workers != 1 {
		t.Errorf("workers = %d, want clamped to 1", got.Workers)
	}
}

func TestSharedMarks(t *testing.T) {
	m := NewSharedMarks()
	id := object.ID{Birth: 1, Seq: 1}
	if m.Test(id, 0) {
		t.Error("fresh mark set")
	}
	if m.TestAndSet(id, 0) {
		t.Error("first TestAndSet reported already-set")
	}
	if !m.TestAndSet(id, 0) || !m.Test(id, 0) {
		t.Error("second TestAndSet missed the mark")
	}
	if m.Test(id, 1) {
		t.Error("different index marked")
	}
}

func BenchmarkParallelClosure4(b *testing.B) {
	s, ids := randomGraphStore(b, 270, 1)
	c := query.MustCompile(parClosure)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunParallel(c, s, 4, []object.ID{ids[0]})
	}
}
