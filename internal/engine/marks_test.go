package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"hyperfile/internal/object"
	"hyperfile/internal/packed"
	"hyperfile/internal/query"
	"hyperfile/internal/store"
)

// TestPackedMarksDifferential drives packedMarks and mapMarks with identical
// randomized op streams — TestAndSet, Test, and full release — over a
// collision-heavy id space (few Birth sites, clustered Seq values, small
// filter indices) and asserts identical observable behavior on every op.
func TestPackedMarksDifferential(t *testing.T) {
	for _, seed := range []int64{3, 19, 91} {
		rng := rand.New(rand.NewSource(seed))
		pm := packedMarks{s: packed.NewSet(0)}
		mm := make(mapMarks)
		genPair := func() (object.ID, int) {
			id := object.ID{
				Birth: object.SiteID(rng.Intn(3) + 1),
				Seq:   uint64(rng.Intn(6)) * uint64(1<<uint(rng.Intn(10))),
			}
			return id, rng.Intn(5)
		}
		for op := 0; op < 10000; op++ {
			id, idx := genPair()
			switch rng.Intn(2) {
			case 0:
				if got, want := pm.TestAndSet(id, idx), mm.TestAndSet(id, idx); got != want {
					t.Fatalf("seed %d op %d: TestAndSet(%v,%d) = %v, want %v", seed, op, id, idx, got, want)
				}
			case 1:
				if got, want := pm.Test(id, idx), mm.Test(id, idx); got != want {
					t.Fatalf("seed %d op %d: Test(%v,%d) = %v, want %v", seed, op, id, idx, got, want)
				}
			}
		}
		// Release: both tables drop every mark.
		pm.s.Reset()
		mm = make(mapMarks)
		id, idx := genPair()
		if pm.Test(id, idx) || mm.Test(id, idx) {
			t.Fatalf("seed %d: mark survived release", seed)
		}
	}
}

// TestMemOptEngineSameAnswers: a WithMemOpt engine (packed marks, pooled
// queue, scratch env) must return exactly the answer of the default engine
// on random graphs, in both queue disciplines, including after scratch
// release and reuse by a following engine.
func TestMemOptEngineSameAnswers(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := store.New(1)
		n := 5 + rng.Intn(50)
		objs := make([]*object.Object, n)
		for i := range objs {
			objs[i] = s.NewObject()
		}
		for _, o := range objs {
			if rng.Intn(3) == 0 {
				o.Add("keyword", object.Keyword("hot"), object.Value{})
			}
			for j := 0; j < 1+rng.Intn(3); j++ {
				o.Add("Pointer", object.String("Reference"), object.Pointer(objs[rng.Intn(n)].ID))
			}
			if err := s.Put(o); err != nil {
				t.Fatal(err)
			}
		}
		c := query.MustCompile(`S [ (Pointer, "Reference", ?X) ^^X ]** (keyword, "hot", ?) -> T`)
		for _, order := range []Order{BFS, DFS} {
			base := New(c, s, WithOrder(order))
			opt := New(c, s, WithOrder(order), WithMemOpt())
			base.AddInitial(objs[0].ID)
			opt.AddInitial(objs[0].ID)
			base.Run()
			opt.Run()
			if !base.Results().Equal(opt.Results()) {
				t.Fatalf("seed %d order %v: memopt answer differs: %v vs %v",
					seed, order, opt.Results(), base.Results())
			}
			bs, os := base.Stats(), opt.Stats()
			if bs != os {
				t.Fatalf("seed %d order %v: memopt stats differ: %+v vs %+v", seed, order, os, bs)
			}
			if opt.MarkCount() == 0 && bs.Processed > 0 {
				t.Fatalf("seed %d: memopt engine never marked", seed)
			}
			opt.ReleaseScratch()
			if opt.MarkCount() != 0 {
				t.Fatalf("seed %d: %d marks survived ReleaseScratch", seed, opt.MarkCount())
			}
		}
	}
}

// TestMemOptFetchesAndBindings: the scratch environment is cleared between
// Steps — bindings from one object must never leak into the next object's
// match, and fetched values must come out identical to the default engine.
func TestMemOptFetchesAndBindings(t *testing.T) {
	s := store.New(1)
	ids := buildChain(t, s, 6, "hot")
	src := `S [ (Pointer, "Reference", ?X) ^^X ]** (keyword, ?K, ?) (name, ->N, ?) -> T`
	for i, id := range ids {
		o, _ := s.Get(id)
		o.Add("name", object.String(string(rune('a'+i))), object.Value{})
		if err := s.Put(o); err != nil {
			t.Fatal(err)
		}
	}
	c := query.MustCompile(src)
	base := New(c, s)
	opt := New(c, s, WithMemOpt())
	base.AddInitial(ids[0])
	opt.AddInitial(ids[0])
	base.Run()
	opt.Run()
	if !base.Results().Equal(opt.Results()) {
		t.Fatalf("results differ: %v vs %v", opt.Results(), base.Results())
	}
	_, bf := base.TakeResults()
	_, of := opt.TakeResults()
	if len(bf) != len(of) {
		t.Fatalf("fetch count differs: %d vs %d", len(of), len(bf))
	}
	key := func(f Fetch) string { return fmt.Sprintf("%s|%v|%v", f.Var, f.From, f.Val) }
	seen := map[string]int{}
	for _, f := range bf {
		seen[key(f)]++
	}
	for _, f := range of {
		if seen[key(f)] == 0 {
			t.Fatalf("memopt fetched %+v, absent from default run", f)
		}
		seen[key(f)]--
	}
}
