package engine

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"hyperfile/internal/object"
	"hyperfile/internal/query"
	"hyperfile/internal/store"
)

// buildRandomTree stores a random tree (every node except the root has one
// parent) and returns ids plus each node's depth (root = 1, matching the
// paper's iteration numbering).
func buildRandomTree(t *testing.T, s *store.Store, n int, seed int64) ([]object.ID, []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	objs := make([]*object.Object, n)
	for i := range objs {
		objs[i] = s.NewObject()
	}
	depth := make([]int, n)
	depth[0] = 1
	for i := 1; i < n; i++ {
		parent := rng.Intn(i)
		objs[parent].Add("Pointer", object.String("Child"), object.Pointer(objs[i].ID))
		depth[i] = depth[parent] + 1
	}
	// Self-loop leaves so that the closure's selection never drops them
	// (literal semantics), keeping depth the only discriminator.
	for i, o := range objs {
		if len(o.Pointers("Pointer", "Child")) == 0 {
			o.Add("Pointer", object.String("Child"), object.Pointer(objs[i].ID))
		}
		o.Add("keyword", object.Keyword("k"), object.Value{})
		if err := s.Put(o); err != nil {
			t.Fatal(err)
		}
	}
	ids := make([]object.ID, n)
	for i, o := range objs {
		ids[i] = o.ID
	}
	return ids, depth
}

// TestBoundedIterationDepthProperty: under the paper's operational
// semantics (Figure 3), a k-bounded iterator admits exactly the nodes whose
// pointer-chain length from the root is at most max(k, 2): initial objects
// always traverse the body once before reaching the iterator marker, so
// their direct children exist for every k, and an object of chain length d
// re-enters the body only while d < k. This matches the paper's worked
// example (k=3 admits chain lengths 1..3 and never examines depth 4).
func TestBoundedIterationDepthProperty(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		s := store.New(1)
		ids, depth := buildRandomTree(t, s, 40, seed)
		for _, k := range []int{1, 2, 3, 5} {
			src := fmt.Sprintf(
				`S [ (Pointer, "Child", ?X) ^^X ]*%d (keyword, "k", ?) -> T`, k)
			res, _ := run(t, s, src, ids[0])
			limit := k
			if limit < 2 {
				limit = 2
			}
			want := object.NewIDSet()
			for i, d := range depth {
				if d <= limit {
					want.Add(ids[i])
				}
			}
			if !res.Equal(want) {
				t.Errorf("seed %d k %d: got %v want %v (depths %v)", seed, k, res, want, depth)
			}
		}
	}
}

// TestClosureEqualsLargeBound: on a finite graph, a bound at least the
// graph's diameter is equivalent to the closure.
func TestClosureEqualsLargeBound(t *testing.T) {
	s := store.New(1)
	ids, _ := buildRandomTree(t, s, 30, 42)
	closure, _ := run(t, s,
		`S [ (Pointer, "Child", ?X) ^^X ]** (keyword, "k", ?) -> T`, ids[0])
	bounded, _ := run(t, s,
		`S [ (Pointer, "Child", ?X) ^^X ]*40 (keyword, "k", ?) -> T`, ids[0])
	if !closure.Equal(bounded) {
		t.Errorf("closure %v != deep bound %v", closure, bounded)
	}
}

// TestNestedIteratorsHandTraced pins the exact semantics of nested
// iterators on a hand-traced example.
//
// Query: S [ (P, "a", ?X) ^^X [ (P, "b", ?Y) ^^Y ]*2 ]*2 (k, "k", ?) -> T
// Graph: s -a-> a1; a1 -b-> b1 -b-> b2; s -b-> sb1.
//
//   - s: initial, passes both iterator markers (start 0), in T.
//   - a1: outer chain length 2 >= 2, exits outer by count after spawning b1
//     through the inner body, in T.
//   - b1: inner chain length 2 >= 2 exits inner by count, outer counter
//     inherited from a1 (2 >= 2) exits outer, in T; it never re-enters the
//     inner body so b2 is never created.
//   - sb1: exits the inner iterator by count but loops back through the
//     outer body, where it fails the (P, "a", ?X) selection: dropped.
func TestNestedIteratorsHandTraced(t *testing.T) {
	s := store.New(1)
	mk := func() *object.Object {
		o := s.NewObject().Add("k", object.Keyword("k"), object.Value{})
		return o
	}
	root, a1, b1, b2, sb1 := mk(), mk(), mk(), mk(), mk()
	root.Add("P", object.String("a"), object.Pointer(a1.ID))
	root.Add("P", object.String("b"), object.Pointer(sb1.ID))
	a1.Add("P", object.String("b"), object.Pointer(b1.ID))
	b1.Add("P", object.String("b"), object.Pointer(b2.ID))
	for _, o := range []*object.Object{root, a1, b1, b2, sb1} {
		if err := s.Put(o); err != nil {
			t.Fatal(err)
		}
	}
	res, e := run(t, s,
		`S [ (P, "a", ?X) ^^X [ (P, "b", ?Y) ^^Y ]*2 ]*2 (k, "k", ?) -> T`,
		root.ID)
	want := object.NewIDSet(root.ID, a1.ID, b1.ID)
	if !res.Equal(want) {
		t.Errorf("results = %v, want %v", res, want)
	}
	// b2 must never even be examined.
	if e.Stats().Processed != 4 {
		t.Errorf("processed = %d, want 4 (s, a1, b1, sb1)", e.Stats().Processed)
	}
}

func TestIterAtDefaults(t *testing.T) {
	it := Item{Iters: []int{5, 2}}
	if it.iterAt(0) != 5 || it.iterAt(1) != 2 {
		t.Errorf("explicit levels wrong")
	}
	if it.iterAt(2) != 1 || it.iterAt(10) != 1 {
		t.Errorf("missing levels must default to 1")
	}
}

func TestChildItersProperty(t *testing.T) {
	f := func(levels []uint8, rawDepth uint8) bool {
		it := Item{}
		for _, l := range levels {
			it.Iters = append(it.Iters, int(l)+1)
		}
		d := int(rawDepth%6) + 1
		child := it.childIters(d)
		if len(child) != d {
			return false
		}
		// Every level except the innermost is inherited (padded with 1);
		// the innermost is incremented.
		for i := 0; i < d-1; i++ {
			if child[i] != it.iterAt(i) {
				return false
			}
		}
		return child[d-1] == it.iterAt(d-1)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChildItersDepthZero(t *testing.T) {
	it := Item{Iters: []int{3}}
	if got := it.childIters(0); got != nil {
		t.Errorf("depth-0 child iters = %v, want nil", got)
	}
}

// TestEnqueueResetsTransientState: arriving items start with empty bindings
// and next == start, per the remote-dereference message semantics.
func TestEnqueueResetsTransientState(t *testing.T) {
	s := store.New(1)
	o := s.NewObject().Add("keyword", object.Keyword("k"), object.Value{})
	if err := s.Put(o); err != nil {
		t.Fatal(err)
	}
	c := query.MustCompile(`S (keyword, "k", ?) -> T`)
	e := New(c, s)
	e.Enqueue(Item{ID: o.ID, Start: 0, Next: 99 /* stale */})
	e.Run()
	if !e.Results().Has(o.ID) {
		t.Errorf("stale Next not reset: %v", e.Results())
	}
}

// TestRetrievalInsideIterator: a fetch pattern inside an iterator body fires
// once per object that passes it (mark table suppresses reprocessing).
func TestRetrievalInsideIterator(t *testing.T) {
	s := store.New(1)
	ids, _ := buildRandomTree(t, s, 12, 3)
	c := query.MustCompile(
		`S [ (Pointer, "Child", ?X) ^^X (keyword, ->kw, ?) ]** (keyword, "k", ?) -> T`)
	e := New(c, s)
	e.AddInitial(ids[0])
	e.Run()
	results, fetches := e.TakeResults()
	fetchedFrom := object.NewIDSet()
	for _, f := range fetches {
		if f.Var != "kw" {
			t.Fatalf("unexpected fetch %v", f)
		}
		fetchedFrom.Add(f.From)
	}
	// Every object in the closure passed the body's keyword fetch at least
	// once; dedup-by-source must equal the result set.
	if !fetchedFrom.Equal(results) {
		t.Errorf("fetch sources %v != results %v", fetchedFrom, results)
	}
}
