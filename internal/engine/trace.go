package engine

import (
	"fmt"

	"hyperfile/internal/object"
)

// TraceAction classifies a trace event.
type TraceAction uint8

const (
	// TraceDequeued: an item was taken from the working set.
	TraceDequeued TraceAction = iota
	// TraceSkipped: the mark table suppressed a duplicate.
	TraceSkipped
	// TraceMissing: the object was not in the local store.
	TraceMissing
	// TracePassedSelect / TraceFailedSelect: selection outcome.
	TracePassedSelect
	TraceFailedSelect
	// TraceDereferenced: pointers were followed (Local/Remote counts set).
	TraceDereferenced
	// TraceLoopedBack: an iterator routed the object back to its body.
	TraceLoopedBack
	// TraceExitedIter: the object passed beyond an iterator.
	TraceExitedIter
	// TraceResult: the object passed every filter.
	TraceResult
)

var traceNames = [...]string{
	TraceDequeued: "dequeued", TraceSkipped: "skipped-duplicate",
	TraceMissing: "missing", TracePassedSelect: "select-pass",
	TraceFailedSelect: "select-fail", TraceDereferenced: "dereferenced",
	TraceLoopedBack: "loop-back", TraceExitedIter: "iter-exit",
	TraceResult: "result",
}

// String names the action.
func (a TraceAction) String() string {
	if int(a) < len(traceNames) {
		return traceNames[a]
	}
	return fmt.Sprintf("action(%d)", a)
}

// TraceEvent is one step of query processing, for debugging queries that
// return fewer objects than expected (see docs/QUERYLANG.md).
type TraceEvent struct {
	ID     object.ID
	Filter int // filter index; -1 for dequeue-stage events
	Iter   int // innermost iteration number at the time
	Action TraceAction
	// Local/Remote count followed pointers for TraceDereferenced.
	Local, Remote int
}

// String renders the event as a log line.
func (e TraceEvent) String() string {
	switch e.Action {
	case TraceDequeued, TraceSkipped, TraceMissing, TraceResult:
		return fmt.Sprintf("%v: %s", e.ID, e.Action)
	case TraceDereferenced:
		return fmt.Sprintf("%v: F%d %s (%d local, %d remote)", e.ID, e.Filter, e.Action, e.Local, e.Remote)
	default:
		return fmt.Sprintf("%v: F%d %s", e.ID, e.Filter, e.Action)
	}
}

// WithTrace registers a callback receiving every processing step. Tracing
// is for debugging; the callback runs synchronously.
func WithTrace(cb func(TraceEvent)) Option {
	return func(e *Engine) { e.trace = cb }
}

func (e *Engine) emit(ev TraceEvent) {
	if e.trace != nil {
		e.trace(ev)
	}
}
