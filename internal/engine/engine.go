package engine

import (
	"sync"

	"hyperfile/internal/object"
	"hyperfile/internal/pattern"
	"hyperfile/internal/plan"
	"hyperfile/internal/query"
)

// Stats aggregates the work the engine has performed; the simulator and the
// experiment harness charge costs against these quantities.
type Stats struct {
	// Processed counts objects taken through the filters (the paper's ~8 ms
	// per-object cost unit). Missing and duplicate-skipped objects are not
	// counted.
	Processed int
	// Results counts objects added to the local result set (the ~20 ms unit).
	Results int
	// LocalDerefs counts pointers followed to local objects.
	LocalDerefs int
	// RemoteDerefs counts pointers surfaced for remote processing.
	RemoteDerefs int
	// Skipped counts items dropped because their (id, start) was already in
	// the mark table — the paper's duplicate-message suppression.
	Skipped int
	// Missing counts dereferenced ids the local store could not supply.
	Missing int
	// Fetched counts retrieved field values.
	Fetched int
	// TuplesScanned counts tuples examined by selection filters — the
	// quantity index pushdown and effect-free early exit reduce.
	TuplesScanned int
	// IndexProbes counts O(1) index membership probes run in place of (or
	// ahead of) tuple scans.
	IndexProbes int
	// InitialPruned counts initial-set objects dropped by a pure index probe
	// before ever entering the working set.
	InitialPruned int
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Processed += other.Processed
	s.Results += other.Results
	s.LocalDerefs += other.LocalDerefs
	s.RemoteDerefs += other.RemoteDerefs
	s.Skipped += other.Skipped
	s.Missing += other.Missing
	s.Fetched += other.Fetched
	s.TuplesScanned += other.TuplesScanned
	s.IndexProbes += other.IndexProbes
	s.InitialPruned += other.InitialPruned
}

// StepResult reports what processing one working-set item did.
type StepResult struct {
	// Item is the item that was popped.
	Item Item
	// Processed is false when the item was skipped via the mark table or its
	// object is not present locally.
	Processed bool
	// Passed is true when the object passed every filter and joined the
	// result set.
	Passed bool
	// LocalSpawned counts objects this step added to the working set.
	LocalSpawned int
	// Remote lists dereferences that must be forwarded to other sites.
	Remote []RemoteRef
	// Fetches lists field values retrieved by "->" patterns during the step.
	Fetches []Fetch
}

// Marks is the mark-table abstraction: the set of (object, filter index)
// pairs already processed. The default is an engine-local map, per the
// paper's design; a shared implementation enables the shared-memory
// multiprocessor mode of section 6.
type Marks interface {
	// TestAndSet records (id, idx) and reports whether it was already set.
	TestAndSet(id object.ID, idx int) bool
	// Test reports whether (id, idx) is set.
	Test(id object.ID, idx int) bool
}

// mapMarks is the default single-threaded mark table.
type mapMarks map[object.ID]map[int]struct{}

func (m mapMarks) Test(id object.ID, idx int) bool {
	set, ok := m[id]
	if !ok {
		return false
	}
	_, hit := set[idx]
	return hit
}

func (m mapMarks) TestAndSet(id object.ID, idx int) bool {
	set, ok := m[id]
	if !ok {
		set = make(map[int]struct{})
		m[id] = set
	}
	if _, hit := set[idx]; hit {
		return true
	}
	set[idx] = struct{}{}
	return false
}

// Engine processes one query at one site; each query context owns one
// engine. All exported methods are serialized by an internal mutex so a
// site's worker pool can run Step on one context while message handlers
// call Enqueue/HasWork/Stats on the same engine. The mutex covers the whole
// of Step, so the mark table, working set, and iterator state on items need
// no finer synchronization: at most one goroutine is ever inside the filter
// pipeline. Sites additionally pin each context to a single worker, so two
// Steps of the same engine never even contend. (Concurrent processing
// shares state across engines via WithMarks and WithSpawnSink — see
// RunParallel; a table installed with WithMarks must itself be
// concurrency-safe if engines sharing it run in parallel.)
type Engine struct {
	p     *plan.Plan
	src   Source
	loc   Locator
	order Order

	// mu guards everything below. Internal helpers (applySelect, push, pop,
	// ...) assume it is held by the exported caller.
	mu sync.Mutex
	// work[head:] is the live working set; BFS pops advance head instead of
	// reslicing so the backing array survives a full drain and push can
	// compact in place rather than grow.
	work  []Item
	head  int
	marks Marks
	// memopt enables the pooled memory model (see WithMemOpt): workptr is
	// the pooled backing for work, env the per-engine scratch binding
	// environment reused across Steps.
	memopt  bool
	workptr *[]Item
	env     pattern.Env
	// spawn, when set, receives locally-dereferenced items instead of the
	// engine's own working set.
	spawn func(Item)
	// trace, when set, receives every processing step.
	trace func(TraceEvent)

	results object.IDSet
	fetches []Fetch
	stats   Stats
}

// Option configures an Engine.
type Option func(*Engine)

// WithLocator sets the locality oracle (default: AllLocal).
func WithLocator(l Locator) Option {
	return func(e *Engine) { e.loc = l }
}

// WithOrder sets the working-set discipline (default: BFS).
func WithOrder(o Order) Option {
	return func(e *Engine) { e.order = o }
}

// WithMarks replaces the engine-local mark table (e.g. with one shared by
// several engines on a shared-memory multiprocessor).
func WithMarks(m Marks) Option {
	return func(e *Engine) { e.marks = m }
}

// WithSpawnSink redirects locally-dereferenced items to sink instead of the
// engine's own working set, so a coordinator can distribute them.
func WithSpawnSink(sink func(Item)) Option {
	return func(e *Engine) { e.spawn = sink }
}

// New returns an engine for one compiled query over the given object source.
// The query is lowered to a default physical plan (no index pushdown); use
// NewPlanned to execute a pre-built — possibly cached — plan.
func New(q *query.Compiled, src Source, opts ...Option) *Engine {
	return NewPlanned(plan.Build(q, nil, nil), src, opts...)
}

// NewPlanned returns an engine executing a pre-built physical plan. The plan
// is read-only to the engine, so one plan (e.g. out of a site's plan cache)
// may back any number of engines concurrently. If the plan carries index
// probes, the index must cover the same objects src serves.
func NewPlanned(p *plan.Plan, src Source, opts ...Option) *Engine {
	e := &Engine{
		p:       p,
		src:     src,
		loc:     AllLocal{},
		results: make(object.IDSet),
	}
	for _, o := range opts {
		o(e)
	}
	if e.memopt {
		e.acquireScratch()
	}
	if e.marks == nil {
		e.marks = make(mapMarks)
	}
	return e
}

// Plan returns the physical plan the engine executes.
func (e *Engine) Plan() *plan.Plan { return e.p }

// AddInitial seeds the working set with initial-set objects (start = 0).
// When the plan's first operator is a pure index probe, objects failing the
// probe are pruned here — the probe fully decides filter 0, so a failing
// object can never reach the result set and need not enter the working set.
func (e *Engine) AddInitial(ids ...object.ID) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, id := range ids {
		if e.p.InitialProbe != nil {
			e.stats.IndexProbes++
			if !e.p.InitialProbe.Contains(id) {
				e.stats.InitialPruned++
				continue
			}
		}
		e.push(NewItem(id))
	}
}

// Enqueue adds an item arriving from another site (a remote dereference):
// next is reset to start and the binding environment starts empty, exactly as
// the paper specifies for messages. Items entering at filter 0 are initial-set
// objects the originator routed here; they go through the same pure-probe
// pruning as local initial objects (the probe decides filter 0 outright, so a
// pruned item is exactly one a first Step would have discarded).
func (e *Engine) Enqueue(it Item) {
	e.mu.Lock()
	defer e.mu.Unlock()
	it.Next = it.Start
	it.MVars = nil
	if it.Start == 0 && e.p.InitialProbe != nil {
		e.stats.IndexProbes++
		if !e.p.InitialProbe.Contains(it.ID) {
			e.stats.InitialPruned++
			return
		}
	}
	e.push(it)
}

// HasWork reports whether the working set is non-empty.
func (e *Engine) HasWork() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.work) > e.head
}

// Pending returns the number of items in the working set.
func (e *Engine) Pending() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.work) - e.head
}

// DiscardWork empties the working set without processing it (cooperative
// cancellation or deadline shedding). Dedup marks and the accumulated
// result set are untouched.
func (e *Engine) DiscardWork() {
	e.mu.Lock()
	defer e.mu.Unlock()
	clear(e.work)
	e.work = e.work[:0]
	e.head = 0
}

// Results returns the local result set accumulated so far. The set is live;
// callers must not mutate it, and under a multi-worker site must not read it
// while the context may still be stepped (use TakeResults for a stable
// snapshot).
func (e *Engine) Results() object.IDSet {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.results
}

// TakeResults returns the accumulated results and fetches and resets both,
// supporting the paper's protocol of flushing Q.result to the originator
// whenever the working set drains.
func (e *Engine) TakeResults() (object.IDSet, []Fetch) {
	e.mu.Lock()
	defer e.mu.Unlock()
	r, f := e.results, e.fetches
	e.results = make(object.IDSet)
	e.fetches = nil
	return r, f
}

// Stats returns cumulative statistics.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// ReleaseMarks drops the engine-owned mark table. Only valid once the query
// is finished at this site: a retained context keeps its engine alive for
// the distributed-set seed list but never processes again, and its marks
// would otherwise pin one entry per (object, filter) pair the query ever
// touched. A table shared via WithMarks is left alone — its owner decides
// its lifetime.
func (e *Engine) ReleaseMarks() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.releaseMarksLocked()
}

// MarkCount returns the number of marked (object, filter) pairs in an
// engine-owned mark table, or -1 for a shared table installed via
// WithMarks (whose size is not this engine's to report).
func (e *Engine) MarkCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	switch m := e.marks.(type) {
	case mapMarks:
		n := 0
		for _, set := range m {
			n += len(set)
		}
		return n
	case packedMarks:
		return m.s.Len()
	}
	return -1
}

func (e *Engine) push(it Item) {
	if e.head > 0 && len(e.work) == cap(e.work) {
		// The queue is about to grow while dead popped slots sit in front of
		// head: compact in place instead of reallocating.
		n := copy(e.work, e.work[e.head:])
		clear(e.work[n:])
		e.work = e.work[:n]
		e.head = 0
	}
	e.work = append(e.work, it)
}

func (e *Engine) pop() Item {
	var it Item
	if e.order == DFS {
		last := len(e.work) - 1
		it = e.work[last]
		e.work[last] = Item{}
		e.work = e.work[:last]
		if last == e.head {
			e.work = e.work[:0]
			e.head = 0
		}
	} else {
		it = e.work[e.head]
		e.work[e.head] = Item{}
		e.head++
		if e.head == len(e.work) {
			e.work = e.work[:0]
			e.head = 0
		}
	}
	return it
}

// Step pops one item and runs it through the filters until it passes, fails,
// or is entirely dereferenced away. It reports false when the working set is
// empty.
//
// This is the body of Figure 3's outer loop. Exposing it one item at a time
// lets the simulator charge per-object processing cost and interleave message
// arrivals, and lets a real server yield between objects.
func (e *Engine) Step() (StepResult, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.work) == e.head {
		return StepResult{}, false
	}
	it := e.pop()
	res := StepResult{Item: it}
	e.emit(TraceEvent{ID: it.ID, Filter: -1, Iter: it.iterAt(max(len(it.Iters)-1, 0)), Action: TraceDequeued})

	// Duplicate suppression: "if a marked object is found in the working
	// set it is ignored" — refined by start position (the mark table stores
	// the set of filter indices at which the object has been processed).
	if e.marks.Test(it.ID, it.Start) {
		e.stats.Skipped++
		e.emit(TraceEvent{ID: it.ID, Filter: -1, Action: TraceSkipped})
		return res, true
	}
	obj, ok := e.src.Get(it.ID)
	if !ok {
		// The object is gone (deleted or moved between naming and
		// processing). Partial results are better than none: drop it.
		e.stats.Missing++
		e.emit(TraceEvent{ID: it.ID, Filter: -1, Action: TraceMissing})
		return res, true
	}
	e.stats.Processed++
	res.Processed = true
	if it.MVars == nil {
		it.MVars = e.stepEnv()
	}

	alive := true
	for alive && it.Next < e.p.Len() {
		e.marks.TestAndSet(it.ID, it.Next)
		op := &e.p.Ops[it.Next]
		switch op.Kind {
		case query.FSelect:
			if op.FuseDeref {
				alive = e.applyFused(op, obj, &it, &res)
			} else {
				alive = e.applySelect(op, obj, &it, &res)
			}
		case query.FDeref:
			alive = e.applyDeref(op.F, &it, &res)
		case query.FIter:
			e.applyIter(op.F, &it)
		}
	}
	if alive {
		e.results.Add(it.ID)
		e.stats.Results++
		res.Passed = true
		e.emit(TraceEvent{ID: it.ID, Filter: -1, Action: TraceResult})
	}
	return res, true
}

// Run drains the working set completely (single-site processing) and returns
// the statistics for the drain.
func (e *Engine) Run() Stats {
	before := e.Stats()
	for {
		if _, ok := e.Step(); !ok {
			break
		}
	}
	d := e.Stats()
	d.Processed -= before.Processed
	d.Results -= before.Results
	d.LocalDerefs -= before.LocalDerefs
	d.RemoteDerefs -= before.RemoteDerefs
	d.Skipped -= before.Skipped
	d.Missing -= before.Missing
	d.Fetched -= before.Fetched
	d.TuplesScanned -= before.TuplesScanned
	d.IndexProbes -= before.IndexProbes
	d.InitialPruned -= before.InitialPruned
	return d
}

// applySelect implements E for selection filters: the object passes if any
// tuple matches all three patterns; bindings and fetches are applied for
// every matching tuple. The physical operator supplies specialized matchers,
// an optional index probe run ahead of the scan, and an early exit for
// effect-free selections.
func (e *Engine) applySelect(op *plan.Op, obj *object.Object, it *Item, res *StepResult) bool {
	if op.Probe != nil {
		e.stats.IndexProbes++
		if !op.Probe.Contains(obj.ID) {
			// No tuple of the probed class carries the key: the selection
			// cannot match, whatever the data pattern would have tested.
			e.emit(TraceEvent{ID: obj.ID, Filter: it.Next, Action: TraceFailedSelect})
			return false
		}
		if op.PureProbe {
			// The data field is a bare wildcard and nothing binds: a
			// positive probe alone decides the filter, no scan needed.
			e.emit(TraceEvent{ID: obj.ID, Filter: it.Next, Action: TracePassedSelect})
			it.Next++
			return true
		}
	}
	if !e.scanSelect(op, obj, it, res) {
		e.emit(TraceEvent{ID: obj.ID, Filter: it.Next, Action: TraceFailedSelect})
		return false
	}
	e.emit(TraceEvent{ID: obj.ID, Filter: it.Next, Action: TracePassedSelect})
	it.Next++
	return true
}

// scanSelect runs the tuple scan of a selection, applying bind/fetch effects
// for every matching tuple, and reports whether any tuple matched. An
// effect-free selection stops at the first match — later matches could only
// re-confirm the same boolean.
func (e *Engine) scanSelect(op *plan.Op, obj *object.Object, it *Item, res *StepResult) bool {
	sel := op.F.Sel
	matched := false
	for _, t := range obj.Tuples {
		e.stats.TuplesScanned++
		if !op.MatchTuple(t, it.MVars) {
			continue
		}
		matched = true
		if !op.HasEffects {
			break
		}
		applyFieldEffects(sel.Key, t.Key, it, obj.ID, e, res)
		applyFieldEffects(sel.Data, t.Data, it, obj.ID, e, res)
	}
	return matched
}

// applyFused executes a select→deref pair as one kernel: the selection part
// (probe, scan, effects) runs first, and only if the object passes does the
// dereference at the next slot run — marked and traced exactly as the
// standalone two-dispatch path would have. Items entering at the deref slot
// directly (remote arrivals, loopbacks) still execute it standalone.
func (e *Engine) applyFused(op *plan.Op, obj *object.Object, it *Item, res *StepResult) bool {
	if !e.applySelect(op, obj, it, res) {
		return false
	}
	// it.Next now sits on the fused dereference slot.
	e.marks.TestAndSet(it.ID, it.Next)
	return e.applyDeref(e.p.Ops[it.Next].F, it, res)
}

func applyFieldEffects(p pattern.P, v object.Value, it *Item, from object.ID, e *Engine, res *StepResult) {
	if name, ok := p.BindsVar(); ok {
		it.MVars.Bind(name, v)
	}
	if name, ok := p.FetchesVar(); ok {
		fe := Fetch{Var: name, From: from, Val: v}
		e.fetches = append(e.fetches, fe)
		res.Fetches = append(res.Fetches, fe)
		e.stats.Fetched++
	}
}

// applyDeref implements E for dereference filters: every pointer bound to the
// variable spawns a new working-set item (or a remote reference). With Keep
// the dereferencing object continues; otherwise it is consumed.
func (e *Engine) applyDeref(f query.Filter, it *Item, res *StepResult) bool {
	next := it.Next + 1
	childIters := it.childIters(f.Depth)
	for _, v := range it.MVars.Lookup(f.Var) {
		if v.Kind != object.KindPointer {
			continue
		}
		if e.loc.IsLocal(v.Ptr) {
			child := Item{ID: v.Ptr, Start: next, Next: next}
			child.Iters = append([]int(nil), childIters...)
			if e.spawn != nil {
				e.spawn(child)
			} else {
				e.push(child)
			}
			e.stats.LocalDerefs++
			res.LocalSpawned++
		} else {
			ref := RemoteRef{ID: v.Ptr, Start: next}
			ref.Iters = append([]int(nil), childIters...)
			res.Remote = append(res.Remote, ref)
			e.stats.RemoteDerefs++
		}
	}
	e.emit(TraceEvent{
		ID: it.ID, Filter: next - 1, Action: TraceDereferenced,
		Local: res.LocalSpawned, Remote: len(res.Remote),
	})
	if !f.Keep {
		return false
	}
	it.Next = next
	return true
}

// applyIter implements E for iterator markers: objects that have traversed
// the whole body (start at or before the body) or exhausted the iteration
// bound continue; others loop back to the body start.
func (e *Engine) applyIter(f query.Filter, it *Item) {
	if it.Start <= f.BodyStart || (f.K != query.Closure && it.iterAt(f.Depth) >= f.K) {
		e.emit(TraceEvent{ID: it.ID, Filter: it.Next, Iter: it.iterAt(f.Depth), Action: TraceExitedIter})
		it.Next++
		return
	}
	e.emit(TraceEvent{ID: it.ID, Filter: it.Next, Iter: it.iterAt(f.Depth), Action: TraceLoopedBack})
	it.Start = f.BodyStart // so that it passes next time
	it.Next = f.BodyStart
}
