package engine

import (
	"sync"

	"hyperfile/internal/object"
	"hyperfile/internal/packed"
	"hyperfile/internal/pattern"
)

// packedMarks is the memory-optimized engine-owned mark table: an
// open-addressing set over packed (birth, seq, filter) keys. One flat slot
// array replaces the nested map-of-maps, so marking an (object, filter)
// pair allocates nothing in the steady state. It satisfies Marks, so
// WithMarks-style sharing semantics are unchanged — but unlike a table
// installed via WithMarks, a packedMarks is engine-owned and ReleaseMarks
// returns its storage to the pool.
type packedMarks struct{ s *packed.Set }

func (m packedMarks) Test(id object.ID, idx int) bool {
	hi, lo := packed.IDKey(id, idx)
	return m.s.Contains(hi, lo)
}

func (m packedMarks) TestAndSet(id object.ID, idx int) bool {
	hi, lo := packed.IDKey(id, idx)
	return m.s.TestAndSet(hi, lo)
}

// The pools below back WithMemOpt engines. Lifetimes follow the query
// context: storage is acquired when the engine is built and returned by
// ReleaseScratch/ReleaseMarks when the site finishes, force-completes, or
// retains the context — the same three paths that already release the
// sent-cache and global marks.
var (
	markSetPool = sync.Pool{New: func() any { return packed.NewSet(0) }}
	workPool    = sync.Pool{New: func() any { w := make([]Item, 0, 64); return &w }}
	envPool     = sync.Pool{New: func() any { return pattern.Env{} }}
)

// WithMemOpt switches the engine to the pooled memory model: a packed
// open-addressing mark table instead of the nested maps, a pooled working-set
// backing array, and a per-engine scratch binding environment reused across
// Steps instead of one map allocation per processed object. Answers are
// byte-identical to the default model (the equivalence matrix proves it);
// only the allocation profile changes. Callers owning the context must call
// ReleaseScratch once the query is finished, force-completed, or retained.
func WithMemOpt() Option {
	return func(e *Engine) { e.memopt = true }
}

// acquireScratch installs pooled storage on a WithMemOpt engine. Called from
// NewPlanned after options are applied, so a table installed via WithMarks
// is never overridden (and no pooled set is acquired just to leak).
func (e *Engine) acquireScratch() {
	if e.marks == nil {
		e.marks = packedMarks{s: markSetPool.Get().(*packed.Set)}
	}
	e.workptr = workPool.Get().(*[]Item)
	e.work = (*e.workptr)[:0]
}

// stepEnv returns the binding environment for the item about to be
// processed: a cleared per-engine scratch map under WithMemOpt (Step is
// serialized by e.mu and the environment never outlives one Step), or a
// fresh map on the paper-exact path.
func (e *Engine) stepEnv() pattern.Env {
	if !e.memopt {
		return pattern.Env{}
	}
	if e.env == nil {
		e.env = envPool.Get().(pattern.Env)
	}
	clear(e.env)
	return e.env
}

// ReleaseScratch returns the engine's pooled storage — working-set backing,
// scratch environment, and packed mark table — and is a no-op for
// paper-exact engines. Like ReleaseMarks it is only valid once the query is
// finished at this site: the engine stays safe to poke (a straggler Enqueue
// just allocates a small fresh queue) but is no longer on the pooled path.
func (e *Engine) ReleaseScratch() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.memopt {
		return
	}
	if e.workptr != nil {
		full := e.work[:cap(e.work)]
		clear(full) // drop Iters/MVars references before pooling
		*e.workptr = full[:0]
		workPool.Put(e.workptr)
		e.workptr = nil
	}
	e.work, e.head = nil, 0
	if e.env != nil {
		clear(e.env)
		envPool.Put(e.env)
		e.env = nil
	}
	e.releaseMarksLocked()
}

// releaseMarksLocked drops an engine-owned mark table (map or packed); a
// shared table installed via WithMarks is left alone.
func (e *Engine) releaseMarksLocked() {
	switch m := e.marks.(type) {
	case mapMarks:
		e.marks = make(mapMarks)
	case packedMarks:
		m.s.Reset()
		markSetPool.Put(m.s)
		// The context is finished; if anything marks again it lands in a
		// small fresh map, off the pooled path.
		e.marks = make(mapMarks)
	}
}
