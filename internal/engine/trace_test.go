package engine

import (
	"strings"
	"testing"

	"hyperfile/internal/object"
	"hyperfile/internal/query"
	"hyperfile/internal/store"
)

// TestTracePaperExample traces the section-3.1 worked example (A->B->C->D,
// k=3) and checks the narrative: B loops back, C exits by count, D never
// appears.
func TestTracePaperExample(t *testing.T) {
	s := store.New(1)
	ids := buildChain(t, s, 4, "Distributed")
	c := query.MustCompile(`S [ (Pointer, "Reference", ?X) ^^X ]*3 (keyword, "Distributed", ?) -> T`)

	var events []TraceEvent
	e := New(c, s, WithTrace(func(ev TraceEvent) { events = append(events, ev) }))
	e.AddInitial(ids[0])
	e.Run()

	byID := map[object.ID][]TraceAction{}
	for _, ev := range events {
		byID[ev.ID] = append(byID[ev.ID], ev.Action)
	}
	has := func(id object.ID, a TraceAction) bool {
		for _, got := range byID[id] {
			if got == a {
				return true
			}
		}
		return false
	}
	// A (initial): exits the iterator immediately (start <= body start).
	if !has(ids[0], TraceExitedIter) || !has(ids[0], TraceResult) {
		t.Errorf("A events = %v", byID[ids[0]])
	}
	// B (chain length 2): loops back once, then exits and passes.
	if !has(ids[1], TraceLoopedBack) || !has(ids[1], TraceResult) {
		t.Errorf("B events = %v", byID[ids[1]])
	}
	// C (chain length 3): exits by count WITHOUT looping back.
	if has(ids[2], TraceLoopedBack) || !has(ids[2], TraceExitedIter) || !has(ids[2], TraceResult) {
		t.Errorf("C events = %v", byID[ids[2]])
	}
	// D (chain length 4): never dequeued at all.
	if len(byID[ids[3]]) != 0 {
		t.Errorf("D events = %v, want none (paper: 'terminates before examining D')", byID[ids[3]])
	}
}

func TestTraceEventStrings(t *testing.T) {
	id := object.ID{Birth: 1, Seq: 2}
	cases := []struct {
		ev   TraceEvent
		want string
	}{
		{TraceEvent{ID: id, Filter: -1, Action: TraceDequeued}, "dequeued"},
		{TraceEvent{ID: id, Filter: 2, Action: TraceFailedSelect}, "F2 select-fail"},
		{TraceEvent{ID: id, Filter: 1, Action: TraceDereferenced, Local: 2, Remote: 1}, "(2 local, 1 remote)"},
		{TraceEvent{ID: id, Filter: 3, Action: TraceLoopedBack}, "loop-back"},
	}
	for _, c := range cases {
		if got := c.ev.String(); !strings.Contains(got, c.want) {
			t.Errorf("String() = %q, want containing %q", got, c.want)
		}
	}
	if TraceAction(99).String() == "" {
		t.Error("out-of-range action should render")
	}
}

// TestTraceCountsConsistent: select-fail + result counts line up with
// engine statistics.
func TestTraceCountsConsistent(t *testing.T) {
	s := store.New(1)
	ids := buildChain(t, s, 8, "hot")
	c := query.MustCompile(`S [ (Pointer, "Reference", ?X) ^^X ]** (keyword, "hot", ?) -> T`)
	results, skips := 0, 0
	e := New(c, s, WithTrace(func(ev TraceEvent) {
		switch ev.Action {
		case TraceResult:
			results++
		case TraceSkipped:
			skips++
		}
	}))
	e.AddInitial(ids[0])
	st := e.Run()
	if results != st.Results || skips != st.Skipped {
		t.Errorf("trace counts (results %d, skips %d) != stats (%d, %d)",
			results, skips, st.Results, st.Skipped)
	}
}
