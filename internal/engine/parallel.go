package engine

import (
	"sync"

	"hyperfile/internal/object"
	"hyperfile/internal/query"
)

// This file implements the shared-memory multiprocessor mode sketched in the
// paper's conclusion: "all available processors can share the same general
// query information, mark table, and working set. ... each processor
// independently runs the algorithm of Section 3.1. Termination requires that
// the set be empty, and that no processors are still working on the query."
//
// As the paper notes, strict locking against two processors picking up the
// same document is unnecessary — duplicate processing can only produce
// duplicate (set-absorbed) answers, never wrong ones. We nevertheless use an
// atomic mark table, which both suppresses duplicates and keeps closure
// queries from ever looping.

// sharedMarks is a Marks implementation safe for concurrent engines.
type sharedMarks struct {
	mu sync.Mutex
	m  mapMarks
}

// NewSharedMarks returns a concurrency-safe mark table for engines
// cooperating on one query.
func NewSharedMarks() Marks {
	return &sharedMarks{m: make(mapMarks)}
}

func (s *sharedMarks) Test(id object.ID, idx int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Test(id, idx)
}

func (s *sharedMarks) TestAndSet(id object.ID, idx int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.TestAndSet(id, idx)
}

// sharedQueue is the shared working set W plus the idle-worker termination
// protocol.
type sharedQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []Item
	idle   int
	total  int
	closed bool
}

func newSharedQueue(workers int) *sharedQueue {
	q := &sharedQueue{total: workers}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push adds one item and wakes a worker.
func (q *sharedQueue) push(it Item) {
	q.mu.Lock()
	q.items = append(q.items, it)
	q.mu.Unlock()
	q.cond.Signal()
}

// pop blocks until an item is available or every worker is idle with an
// empty set (global termination: reports false).
func (q *sharedQueue) pop() (Item, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if len(q.items) > 0 {
			it := q.items[0]
			q.items = q.items[1:]
			return it, true
		}
		if q.closed {
			return Item{}, false
		}
		q.idle++
		if q.idle == q.total {
			// Set empty and no processor working: the query terminates.
			q.closed = true
			q.cond.Broadcast()
			return Item{}, false
		}
		q.cond.Wait()
		q.idle--
	}
}

// ParallelResult is the outcome of a RunParallel call.
type ParallelResult struct {
	Results object.IDSet
	Fetches []Fetch
	Stats   Stats
	// Workers is the number of processors used.
	Workers int
}

// RunParallel executes a compiled query over a single (shared-memory) store
// with the given number of worker processors. Results are identical to the
// serial algorithm's; work distribution is nondeterministic but the answer,
// being a set, is not.
func RunParallel(q *query.Compiled, src Source, workers int, initial []object.ID) ParallelResult {
	if workers < 1 {
		workers = 1
	}
	marks := NewSharedMarks()
	queue := newSharedQueue(workers)
	for _, id := range initial {
		queue.push(NewItem(id))
	}

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		merged  = make(object.IDSet)
		fetches []Fetch
		stats   Stats
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each processor runs the section-3.1 algorithm with its own
			// local state (matching variables live per item) over the
			// shared mark table and working set.
			e := New(q, src, WithMarks(marks), WithSpawnSink(queue.push))
			for {
				it, ok := queue.pop()
				if !ok {
					break
				}
				e.Enqueue(it)
				e.Step()
			}
			r, f := e.TakeResults()
			mu.Lock()
			merged.AddAll(r)
			fetches = append(fetches, f...)
			stats.Add(e.Stats())
			mu.Unlock()
		}()
	}
	wg.Wait()
	return ParallelResult{Results: merged, Fetches: fetches, Stats: stats, Workers: workers}
}
