// Package server runs a HyperFile site as a network service over the TCP
// transport, and provides the matching client. This is the deployment shape
// of the paper's prototype: one server process per machine, an experimental
// client on a separate machine submitting queries and receiving results.
package server

import (
	"fmt"
	"log/slog"
	"sync"
	"time"

	"hyperfile/internal/metrics"
	"hyperfile/internal/object"
	"hyperfile/internal/site"
	"hyperfile/internal/transport"
	"hyperfile/internal/wire"
)

// Options tunes a server's transport reliability and failure detection.
// The zero value disables the failure detector and takes transport defaults.
type Options struct {
	// Transport configures the reliability layer (retransmission, dial
	// backoff) and optional fault injection.
	Transport transport.Options
	// HeartbeatInterval enables the failure detector: the server probes its
	// peers at this interval and declares a peer down after SuspectAfter of
	// silence (0 = no detector).
	HeartbeatInterval time.Duration
	// SuspectAfter is the silence threshold before a peer is declared down
	// (default 4 × HeartbeatInterval).
	SuspectAfter time.Duration
	// Metrics receives the server's instrumentation: site, transport, and
	// termination counters all land in this one registry. Nil gets a fresh
	// registry (a server is always observable; sharing one registry across
	// servers in a test is why this is injectable).
	Metrics *metrics.Registry
	// TraceCap bounds the per-server ring of completed query traces
	// (default site.DefaultTraceCap).
	TraceCap int
}

// Server owns one Site on its own goroutine, fed by the TCP transport.
type Server struct {
	cfg  site.Config
	s    *site.Site
	tr   *transport.TCP
	lg   *slog.Logger
	opts Options

	reg    *metrics.Registry
	traces *site.TraceBuffer

	mu      sync.Mutex
	mailbox []mail
	wake    chan struct{}
	quit    chan struct{}
	once    sync.Once
	wg      sync.WaitGroup

	// stepWakes holds one cap-1 wake channel per extra stepping worker
	// (Config.Workers > 1). The main loop stays the only message handler;
	// the extra workers only call Step, so the site's per-context pinning
	// is what keeps them off each other's queries.
	stepWakes []chan struct{}

	// Failure-detector state (nil maps unless HeartbeatInterval > 0).
	hbMu      sync.Mutex
	heard     map[object.SiteID]time.Time
	suspected map[object.SiteID]bool
}

type mail struct {
	from object.SiteID
	msg  wire.Msg
	// buf, when non-nil, is the pooled read buffer msg's borrowed fields
	// alias (transport ZeroCopy). The loop releases it after HandleMessage
	// and dispatch have fully consumed the message.
	buf *wire.ReadBuf
}

// release returns the message's read buffer (if any) to the pool. The
// message must not be touched afterwards: in race builds the bytes are
// poisoned so a straggling borrowed read fails loudly.
func (m *mail) release() {
	if m.buf != nil {
		m.buf.Release()
		m.buf = nil
	}
}

// New starts a server for the given site configuration, listening on addr.
// Pass logger nil for a default logger.
func New(cfg site.Config, addr string, logger *slog.Logger) (*Server, error) {
	return NewOpts(cfg, addr, logger, Options{})
}

// NewOpts is New with explicit transport and failure-detection options.
func NewOpts(cfg site.Config, addr string, logger *slog.Logger, opts Options) (*Server, error) {
	if logger == nil {
		logger = slog.Default()
	}
	if opts.HeartbeatInterval > 0 && opts.SuspectAfter <= 0 {
		opts.SuspectAfter = 4 * opts.HeartbeatInterval
	}
	if opts.Metrics == nil {
		opts.Metrics = metrics.NewRegistry()
	}
	// Site, transport, and termination all write into the same registry.
	cfg.Metrics = opts.Metrics
	opts.Transport.Metrics = opts.Metrics
	if cfg.Traces == nil {
		cfg.Traces = site.NewTraceBuffer(opts.TraceCap)
	}
	srv := &Server{
		cfg:    cfg,
		s:      site.New(cfg),
		lg:     logger.With("site", cfg.ID.String()),
		opts:   opts,
		reg:    opts.Metrics,
		traces: cfg.Traces,
		wake:   make(chan struct{}, 1),
		quit:   make(chan struct{}),
	}
	if opts.HeartbeatInterval > 0 {
		srv.heard = make(map[object.SiteID]time.Time, len(cfg.Peers))
		srv.suspected = make(map[object.SiteID]bool)
		now := time.Now()
		for _, peer := range cfg.Peers {
			srv.heard[peer] = now
		}
	}
	if opts.Transport.ZeroCopy {
		// The mailbox decouples the reader goroutine from the site goroutine,
		// so the transport cannot release a borrowed buffer when the handler
		// returns; take ownership of the reference instead and release it in
		// the loop once the message is fully consumed.
		opts.Transport.BufHandler = srv.postBuf
	}
	tr, err := transport.ListenTCPOpts(cfg.ID, addr, srv.post, opts.Transport)
	if err != nil {
		return nil, err
	}
	srv.tr = tr
	srv.wg.Add(1)
	go srv.loop()
	for w := 1; w < cfg.Workers; w++ {
		wake := make(chan struct{}, 1)
		srv.stepWakes = append(srv.stepWakes, wake)
		srv.wg.Add(1)
		go srv.stepLoop(wake)
	}
	if opts.HeartbeatInterval > 0 {
		srv.wg.Add(1)
		go srv.heartbeatLoop()
	}
	if cfg.MaxInflight > 0 || cfg.QueryDeadline > 0 {
		srv.wg.Add(1)
		go srv.sweeperLoop()
	}
	return srv, nil
}

// sweeperLoop periodically expires query deadlines and drains the admission
// queue on the site goroutine. Without it an idle server would never notice
// an expired context, an abandoned drain, or a shed-worthy queued Submit.
func (srv *Server) sweeperLoop() {
	defer srv.wg.Done()
	every := 50 * time.Millisecond
	if d := srv.cfg.QueryDeadline; d > 0 {
		every = d / 4
		if every < time.Millisecond {
			every = time.Millisecond
		}
		if every > 100*time.Millisecond {
			every = 100 * time.Millisecond
		}
	}
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-srv.quit:
			return
		case <-ticker.C:
		}
		srv.postThunk(func() {
			out, err := srv.s.ExpireDeadlines()
			if err != nil {
				srv.lg.Error("deadline sweep failed", "err", err)
				return
			}
			srv.dispatch(out)
		})
	}
}

// Addr returns the server's bound address.
func (srv *Server) Addr() string { return srv.tr.Addr() }

// ID returns the server's site id.
func (srv *Server) ID() object.SiteID { return srv.tr.Self() }

// AddPeer registers another site's (or a client's) address.
func (srv *Server) AddPeer(id object.SiteID, addr string) { srv.tr.AddPeer(id, addr) }

// Metrics returns the server's metrics registry (never nil).
func (srv *Server) Metrics() *metrics.Registry { return srv.reg }

// Traces returns the server's ring of completed query traces (never nil).
func (srv *Server) Traces() *site.TraceBuffer { return srv.traces }

// Stats snapshots the underlying site's statistics. Values are exact only
// while the server is idle.
func (srv *Server) Stats() site.Stats {
	ch := make(chan site.Stats, 1)
	srv.postThunk(func() { ch <- srv.s.Stats() })
	select {
	case st := <-ch:
		return st
	case <-srv.quit:
		return site.Stats{}
	}
}

// post is the transport handler: enqueue and wake the site goroutine.
// Heartbeats feed the failure detector and stop here; any other traffic from
// a monitored peer also refreshes its liveness clock.
func (srv *Server) post(from object.SiteID, m wire.Msg) {
	srv.postBuf(from, m, nil)
}

// postBuf is the zero-copy transport handler: same as post, but the message
// arrives with the pooled buffer it was decoded over and this server owns
// the reference until the loop finishes with the message.
func (srv *Server) postBuf(from object.SiteID, m wire.Msg, buf *wire.ReadBuf) {
	srv.noteHeard(from)
	if _, ok := m.(*wire.Heartbeat); ok {
		if buf != nil {
			buf.Release()
		}
		return
	}
	srv.mu.Lock()
	srv.mailbox = append(srv.mailbox, mail{from: from, msg: m, buf: buf})
	srv.mu.Unlock()
	srv.poke()
}

// noteHeard refreshes a peer's liveness clock; a formerly suspected peer that
// speaks again is reinstated on the site goroutine.
func (srv *Server) noteHeard(from object.SiteID) {
	srv.hbMu.Lock()
	if _, monitored := srv.heard[from]; !monitored {
		srv.hbMu.Unlock()
		return
	}
	srv.heard[from] = time.Now()
	wasSuspect := srv.suspected[from]
	delete(srv.suspected, from)
	srv.hbMu.Unlock()
	if wasSuspect {
		srv.lg.Info("peer reinstated", "peer", from.String())
		srv.postThunk(func() { srv.s.PeerUp(from) })
	}
}

// PeerIsDown reports whether the failure detector currently suspects peer.
// Tests (and operators) poll it instead of guessing how long detection
// takes.
func (srv *Server) PeerIsDown(peer object.SiteID) bool {
	srv.hbMu.Lock()
	defer srv.hbMu.Unlock()
	return srv.suspected[peer]
}

// heartbeatLoop probes peers every HeartbeatInterval and declares any peer
// silent for longer than SuspectAfter dead: the site skips it for new work
// and force-completes queries already engaged with it, returning partial
// answers annotated with the unreachable site.
func (srv *Server) heartbeatLoop() {
	defer srv.wg.Done()
	ticker := time.NewTicker(srv.opts.HeartbeatInterval)
	defer ticker.Stop()
	var seq uint64
	for {
		select {
		case <-srv.quit:
			return
		case <-ticker.C:
		}
		seq++
		for _, peer := range srv.cfg.Peers {
			_ = srv.tr.SendUnreliable(peer, &wire.Heartbeat{Seq: seq})
		}
		srv.checkSuspects()
	}
}

func (srv *Server) checkSuspects() {
	now := time.Now()
	var newly []object.SiteID
	srv.hbMu.Lock()
	for peer, last := range srv.heard {
		if !srv.suspected[peer] && now.Sub(last) > srv.opts.SuspectAfter {
			srv.suspected[peer] = true
			newly = append(newly, peer)
		}
	}
	srv.hbMu.Unlock()
	for _, peer := range newly {
		peer := peer
		srv.lg.Warn("peer declared down", "peer", peer.String(),
			"silent", srv.opts.SuspectAfter.String())
		srv.postThunk(func() { srv.dispatch(srv.s.PeerDown(peer)) })
	}
}

// postThunk runs f on the site goroutine (from == 0 marks thunks).
func (srv *Server) postThunk(f func()) {
	srv.mu.Lock()
	srv.mailbox = append(srv.mailbox, mail{msg: thunkMsg{f}})
	srv.mu.Unlock()
	srv.poke()
}

// thunkMsg smuggles a closure through the mailbox.
type thunkMsg struct{ f func() }

func (thunkMsg) Kind() wire.Kind     { return wire.KInvalid }
func (thunkMsg) Query() wire.QueryID { return wire.QueryID{} }

func (srv *Server) poke() {
	select {
	case srv.wake <- struct{}{}:
	default:
	}
}

func (srv *Server) take() (mail, bool) {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	if len(srv.mailbox) == 0 {
		return mail{}, false
	}
	m := srv.mailbox[0]
	srv.mailbox = srv.mailbox[1:]
	return m, true
}

func (srv *Server) loop() {
	defer srv.wg.Done()
	for {
		select {
		case <-srv.quit:
			return
		default:
		}
		if m, ok := srv.take(); ok {
			if th, ok := m.msg.(thunkMsg); ok {
				th.f()
				continue
			}
			// Learn client addresses from messages that carry them. This is
			// a peek, not the dispatch: every message — matched here or not
			// — falls through to HandleMessage below, which rejects unknown
			// kinds with an error.
			// lint:ignore wireswitch address-learning peek; full dispatch with error default is site.HandleMessage
			switch cm := m.msg.(type) {
			case *wire.Submit:
				if cm.ClientAddr != "" {
					srv.tr.AddPeer(cm.Client, cm.ClientAddr)
				}
			case *wire.StatsReq:
				if cm.ClientAddr != "" {
					srv.tr.AddPeer(m.from, cm.ClientAddr)
				}
			case *wire.Migrate:
				if cm.ClientAddr != "" {
					srv.tr.AddPeer(cm.Client, cm.ClientAddr)
				}
			case *wire.MigrateData:
				if cm.ClientAddr != "" {
					srv.tr.AddPeer(cm.Client, cm.ClientAddr)
				}
			}
			out, err := srv.s.HandleMessage(m.from, m.msg)
			if err != nil {
				srv.lg.Error("message rejected", "from", m.from.String(),
					"kind", m.msg.Kind().String(), "err", err)
				m.release()
				continue
			}
			srv.dispatch(out)
			// The site retains nothing that aliases the read buffer (retained
			// kinds are copy-decoded, bodies are cloned into contexts, tokens
			// are banked at dispatch) and every outbound envelope was encoded
			// by Send above, so the buffer can recycle now.
			m.release()
			srv.pokeSteppers()
			continue
		}
		if srv.s.HasWork() {
			_, envs, _, err := srv.s.Step()
			if err != nil {
				srv.lg.Error("engine step failed", "err", err)
				return
			}
			srv.dispatch(envs)
			continue
		}
		select {
		case <-srv.quit:
			return
		case <-srv.wake:
		}
	}
}

// stepLoop is one extra pool worker: it steps the site while work remains,
// then sleeps until the main loop signals fresh work. Liveness never depends
// on these workers — the main loop also steps — so a missed wake costs only
// parallelism, never progress.
func (srv *Server) stepLoop(wake chan struct{}) {
	defer srv.wg.Done()
	for {
		select {
		case <-srv.quit:
			return
		default:
		}
		_, envs, did, err := srv.s.Step()
		if err != nil {
			srv.lg.Error("engine step failed", "err", err)
			return
		}
		srv.dispatch(envs)
		if did {
			continue
		}
		select {
		case <-srv.quit:
			return
		case <-wake:
		}
	}
}

// pokeSteppers wakes the extra pool workers after an event that may have
// created steppable work.
func (srv *Server) pokeSteppers() {
	for _, w := range srv.stepWakes {
		select {
		case w <- struct{}{}:
		default:
		}
	}
}

func (srv *Server) dispatch(envs []wire.Envelope) {
	for _, env := range envs {
		if err := srv.tr.Send(env.To, env.Msg); err != nil {
			// A down peer must not wedge the server: partial results are
			// better than none. The termination credit on that message is
			// lost; the client's timeout/abort path recovers.
			srv.lg.Warn("send failed", "to", env.To.String(),
				"kind", env.Msg.Kind().String(), "err", err)
		}
	}
}

// Close stops the server.
func (srv *Server) Close() {
	srv.once.Do(func() {
		close(srv.quit)
		srv.poke()
		_ = srv.tr.Close()
	})
	srv.wg.Wait()
}

// LoadObjects installs objects into the server's store (setup time).
func (srv *Server) LoadObjects(objs []*object.Object) error {
	for _, o := range objs {
		if err := srv.cfg.Store.Put(o); err != nil {
			return fmt.Errorf("server: load %v: %w", o.ID, err)
		}
	}
	return nil
}
