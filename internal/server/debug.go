package server

import (
	"encoding/json"
	"net"
	"net/http"

	"hyperfile/internal/metrics"
	"hyperfile/internal/site"
)

// DebugSnapshot is the JSON document served at /debug/hyperfile: one site's
// metrics registry plus its ring of completed query traces. The schema is
// documented in docs/OBSERVABILITY.md and pinned by a golden test.
type DebugSnapshot struct {
	// Site is the serving site's id.
	Site string `json:"site"`
	// Metrics is a point-in-time snapshot of every registered instrument.
	Metrics metrics.Snapshot `json:"metrics"`
	// Traces holds the most recent completed-query timelines, oldest first.
	Traces []site.TraceEntry `json:"traces,omitempty"`
}

// DebugSnapshot captures the server's current metrics and traces.
func (srv *Server) DebugSnapshot() DebugSnapshot {
	return DebugSnapshot{
		Site:    srv.tr.Self().String(),
		Metrics: srv.reg.Snapshot(),
		Traces:  srv.traces.Entries(),
	}
}

// DebugHandler serves the debug snapshot as JSON. Mount it wherever the
// operator wants; ServeDebug is the batteries-included variant.
func (srv *Server) DebugHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(srv.DebugSnapshot()); err != nil {
			srv.lg.Warn("debug snapshot encode failed", "err", err)
		}
	})
}

// ServeDebug starts an HTTP listener on addr exposing /debug/hyperfile and
// returns the bound address. The listener closes when the server does.
func (srv *Server) ServeDebug(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/hyperfile", srv.DebugHandler())
	hs := &http.Server{Handler: mux}
	srv.wg.Add(1)
	go func() {
		defer srv.wg.Done()
		_ = hs.Serve(ln)
	}()
	go func() {
		<-srv.quit
		_ = hs.Close()
	}()
	srv.lg.Info("debug endpoint listening", "addr", ln.Addr().String())
	return ln.Addr().String(), nil
}
