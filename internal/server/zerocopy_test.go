package server

import (
	"testing"
	"time"

	"hyperfile/internal/object"
	"hyperfile/internal/site"
	"hyperfile/internal/wire"
)

// TestTCPZeroCopyMemOptEndToEnd runs the same workload over two real TCP
// deployments — paper-exact, and memory-optimized with zero-copy inbound
// decode — and requires identical answers. The optimized servers read frames
// into pooled ref-counted buffers, decode them in place, carry the borrowed
// messages through the async mailbox, and release after dispatch; under
// -race the released bytes are poisoned, so any site logic still holding a
// borrowed string would corrupt loudly here. Batching is on so Deref bodies
// (the borrowed hot path) actually cross the wire, and the fetch query
// exercises borrowed field values flowing into always-copied FetchVal lists.
func TestTCPZeroCopyMemOptEndToEnd(t *testing.T) {
	const fetchQuery = `S [ (Pointer, "Reference", ?X) ^^X ]** (keyword, "hot", ?) (String, "Title", ->title) -> T`

	run := func(optimized bool) (closure, fetch *wire.Complete) {
		var opts Options
		opts.Transport.ZeroCopy = optimized
		_, stores, client := testDeploymentCfg(t, 3, opts, func(cfg *site.Config) {
			cfg.DerefBatch = 4
			cfg.MemOpt = optimized
		})
		ids := loadServerRing(t, stores, 30)
		// Titles give the fetch query borrowed values to ship back.
		for i, st := range stores {
			o, ok := st.Get(ids[i])
			if !ok {
				t.Fatalf("object %v missing from its store", ids[i])
			}
			o.Add("String", object.String("Title"), object.String("t"))
			if err := st.Put(o); err != nil {
				t.Fatal(err)
			}
		}
		// Several rounds so released buffers are actually recycled between
		// queries (a stale borrow would read the next query's bytes).
		var cm *wire.Complete
		for i := 0; i < 3; i++ {
			var err error
			cm, err = client.Exec(object.SiteID(i%3+1), tcpClosure, ids[:1], 10*time.Second)
			if err != nil {
				t.Fatalf("optimized=%v round %d: %v", optimized, i, err)
			}
		}
		fm, err := client.Exec(1, fetchQuery, ids[:1], 10*time.Second)
		if err != nil {
			t.Fatalf("optimized=%v fetch query: %v", optimized, err)
		}
		return cm, fm
	}

	baseC, baseF := run(false)
	optC, optF := run(true)

	if len(baseC.IDs) == 0 {
		t.Fatal("baseline closure returned nothing; workload is broken")
	}
	if len(baseC.IDs) != len(optC.IDs) || baseC.Count != optC.Count {
		t.Fatalf("zero-copy changed the closure answer: %d/%d vs %d/%d",
			len(optC.IDs), optC.Count, len(baseC.IDs), baseC.Count)
	}
	for i := range baseC.IDs {
		if baseC.IDs[i] != optC.IDs[i] {
			t.Fatalf("result %d differs: %v vs %v", i, optC.IDs[i], baseC.IDs[i])
		}
	}
	if len(baseF.Fetches) == 0 {
		t.Fatal("baseline fetch query returned no values; workload is broken")
	}
	if len(baseF.Fetches) != len(optF.Fetches) {
		t.Fatalf("zero-copy changed fetch count: %d vs %d", len(optF.Fetches), len(baseF.Fetches))
	}
	seen := make(map[string]int, len(baseF.Fetches))
	for _, f := range baseF.Fetches {
		seen[f.Var+"|"+f.Val.Str]++
	}
	for _, f := range optF.Fetches {
		seen[f.Var+"|"+f.Val.Str]--
	}
	for k, n := range seen {
		if n != 0 {
			t.Fatalf("fetch multiset differs at %q (%+d)", k, n)
		}
	}
}
