package server

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hyperfile/internal/chaos"
	"hyperfile/internal/metrics"
	"hyperfile/internal/site"
	"hyperfile/internal/transport"
	"hyperfile/internal/wire"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestDebugSnapshotGoldenJSON pins the /debug/hyperfile wire format: a
// hand-built snapshot must marshal byte-for-byte to the checked-in golden
// file. Run with -update to regenerate after an intentional schema change
// (and update docs/OBSERVABILITY.md to match).
func TestDebugSnapshotGoldenJSON(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("transport_frames_sent").Add(3)
	reg.Counter("termination_weight_splits").Add(2)
	reg.Gauge("site_live_contexts").Set(1)
	reg.Histogram("site_step_us").Observe(5)
	reg.Histogram("site_step_us").Observe(40)
	snap := DebugSnapshot{
		Site:    "s2",
		Metrics: reg.Snapshot(),
		Traces: []site.TraceEntry{{
			QID:  wire.QueryID{Origin: 2, Seq: 9},
			Body: `S (keyword, "hot", ?) -> T`,
			Spans: []wire.Span{
				{Site: 2, Seq: 1, Hop: 0, Filter: 0, In: 4, Out: 2, DurationUS: 12},
				{Site: 3, Seq: 1, Hop: 1, Filter: 0, In: 2, Out: 1, DurationUS: 7},
			},
			Partial:  true,
			Duration: 1500 * time.Microsecond,
		}},
	}
	got, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "debug_snapshot.golden.json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if string(got) != string(want) {
		t.Errorf("debug snapshot JSON changed.\n--- got ---\n%s\n--- want ---\n%s\nRun with -update if intentional, and update docs/OBSERVABILITY.md.", got, want)
	}
}

// TestDebugEndpointUnderChaos is the acceptance path: a chaos-lossy
// deployment answers a cross-site query, and /debug/hyperfile on the
// originator reports the assembled multi-site trace, non-zero transport
// retransmissions, and non-zero termination-weight activity.
func TestDebugEndpointUnderChaos(t *testing.T) {
	inj := chaos.NewInjector(chaos.Config{Seed: 23, DropRate: 0.15, DupRate: 0.15})
	servers, stores, client := testDeploymentOpts(t, 3, Options{
		Transport: transport.Options{
			RetransmitBase: 3 * time.Millisecond,
			RetransmitMax:  30 * time.Millisecond,
			MaxAttempts:    400,
			Fault:          inj,
		},
	})
	ids := loadServerRing(t, stores, 30)
	cm, err := client.Exec(1, tcpClosure, ids[:1], 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(cm.IDs) != 15 {
		t.Fatalf("results = %d, want 15", len(cm.IDs))
	}
	sitesInTrace := map[string]bool{}
	for _, sp := range cm.Spans {
		sitesInTrace[sp.Site.String()] = true
	}
	if len(sitesInTrace) != 3 {
		t.Errorf("trace covers sites %v, want all 3", sitesInTrace)
	}

	addr, err := servers[0].ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/hyperfile", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var snap DebugSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Site != "s1" {
		t.Errorf("site = %q", snap.Site)
	}
	c := snap.Metrics.Counters
	if c["termination_weight_splits"] == 0 {
		t.Error("no termination weight splits recorded at the originator")
	}
	if c["termination_weight_returns"] == 0 {
		t.Error("no termination weight returns recorded at the originator")
	}
	if c["transport_frames_sent"] == 0 || c["site_derefs_sent"] == 0 {
		t.Errorf("missing core counters: %v", c)
	}
	// Under 15% drop chaos at least one of the three servers must have
	// retransmitted; the lossy path between any pair suffices.
	var retrans uint64
	for _, srv := range servers {
		retrans += srv.DebugSnapshot().Metrics.Counters["transport_frames_retransmitted"]
	}
	if retrans == 0 {
		t.Error("no retransmissions recorded across the chaos deployment")
	}
	if len(snap.Traces) == 0 {
		t.Fatal("originator retained no trace")
	}
	last := snap.Traces[len(snap.Traces)-1]
	if len(last.Spans) == 0 || last.Partial {
		t.Errorf("trace = %+v, want complete spans", last)
	}
	if q := snap.Metrics.Histograms["site_query_quiescence_us"]; q.Count == 0 {
		t.Error("quiescence histogram empty at originator")
	}
}
