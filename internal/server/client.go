package server

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"hyperfile/internal/metrics"
	"hyperfile/internal/object"
	"hyperfile/internal/transport"
	"hyperfile/internal/wire"
)

// ErrTimeout is returned when the deadline passes; the accompanying Complete
// (if non-nil) carries the partial answer recovered through an abort.
var ErrTimeout = errors.New("server: query timed out")

// ErrRejected reports that the originator's admission control refused the
// query: the site was at its max-inflight bound with a full (or absent)
// admission queue, or the budget lapsed while the query waited for a slot.
var ErrRejected = errors.New("server: query rejected by admission control")

// Client is a HyperFile network client. Like the paper's experimental
// client, it runs "at a separate machine from any of the servers": it has
// its own site id and listener so originators can send Complete messages
// directly to it.
type Client struct {
	tr  *transport.TCP
	reg *metrics.Registry

	mu           sync.Mutex
	next         uint64
	waiters      map[wire.QueryID]chan clientReply
	statsWaiters map[uint64]chan *wire.StatsResp
	migWaiters   map[uint64]chan *wire.Migrated
}

// clientReply resolves a waiting Exec: a completion, or an admission
// rejection.
type clientReply struct {
	complete *wire.Complete
	reject   *wire.Reject
}

// NewClient starts a client endpoint with the given (client) site id,
// listening on addr ("127.0.0.1:0" for ephemeral).
func NewClient(id object.SiteID, addr string) (*Client, error) {
	c := &Client{
		reg: metrics.NewRegistry(),
		// Seed the id counter from the clock so query ids from successive
		// client processes sharing a site id never collide: sites tombstone
		// finished query ids, and a reused id would make a fresh query look
		// like a straggler of the old one — its work silently dropped and
		// its termination credit abandoned, hanging the query.
		next:         uint64(time.Now().UnixNano())<<8 | uint64(rand.Intn(256)),
		waiters:      make(map[wire.QueryID]chan clientReply),
		statsWaiters: make(map[uint64]chan *wire.StatsResp),
		migWaiters:   make(map[uint64]chan *wire.Migrated),
	}
	tr, err := transport.ListenTCP(id, addr, c.onMessage)
	if err != nil {
		return nil, err
	}
	c.tr = tr
	return c, nil
}

// Addr returns the client's listen address (servers must AddPeer it).
func (c *Client) Addr() string { return c.tr.Addr() }

// ID returns the client's site id.
func (c *Client) ID() object.SiteID { return c.tr.Self() }

// AddServer registers a server's address.
func (c *Client) AddServer(id object.SiteID, addr string) { c.tr.AddPeer(id, addr) }

// Close shuts the client down.
func (c *Client) Close() { _ = c.tr.Close() }

// Metrics returns the client's metrics registry (hf_wire_unknown_msgs
// counts wire messages the client had no handler for).
func (c *Client) Metrics() *metrics.Registry { return c.reg }

func (c *Client) onMessage(_ object.SiteID, m wire.Msg) {
	switch m := m.(type) {
	case *wire.Complete:
		c.mu.Lock()
		ch := c.waiters[m.QID]
		delete(c.waiters, m.QID)
		c.mu.Unlock()
		if ch != nil {
			ch <- clientReply{complete: m}
		}
	case *wire.Reject:
		c.mu.Lock()
		ch := c.waiters[m.QID]
		delete(c.waiters, m.QID)
		c.mu.Unlock()
		if ch != nil {
			ch <- clientReply{reject: m}
		}
	case *wire.StatsResp:
		c.mu.Lock()
		ch := c.statsWaiters[m.Seq]
		delete(c.statsWaiters, m.Seq)
		c.mu.Unlock()
		if ch != nil {
			ch <- m
		}
	case *wire.Migrated:
		c.mu.Lock()
		ch := c.migWaiters[m.Seq]
		delete(c.migWaiters, m.Seq)
		c.mu.Unlock()
		if ch != nil {
			ch <- m
		}
	default:
		// The client endpoint only ever receives completions and reply
		// messages it solicited; anything else means a server addressed the
		// wrong site. Count it rather than dropping it invisibly.
		c.reg.Counter("hf_wire_unknown_msgs").Inc()
	}
}

// Migrate moves an object to another site (live, section 4). The request
// goes to the object's presumed current owner — its birth site unless the
// client knows better — and is forwarded along stale presumptions.
func (c *Client) Migrate(id object.ID, to object.SiteID, timeout time.Duration) error {
	c.mu.Lock()
	c.next++
	seq := c.next
	ch := make(chan *wire.Migrated, 1)
	c.migWaiters[seq] = ch
	c.mu.Unlock()
	req := &wire.Migrate{
		Seq: seq, ID: id, To: to,
		Client: c.tr.Self(), ClientAddr: c.tr.Addr(),
	}
	if err := c.tr.Send(id.Birth, req); err != nil {
		c.mu.Lock()
		delete(c.migWaiters, seq)
		c.mu.Unlock()
		return err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case m := <-ch:
		if !m.OK {
			return fmt.Errorf("server: migration failed: %s", m.Err)
		}
		return nil
	case <-timer.C:
		c.mu.Lock()
		delete(c.migWaiters, seq)
		c.mu.Unlock()
		return ErrTimeout
	}
}

// Stats fetches a server's counters.
func (c *Client) Stats(site object.SiteID, timeout time.Duration) (*wire.StatsResp, error) {
	c.mu.Lock()
	c.next++
	seq := c.next
	ch := make(chan *wire.StatsResp, 1)
	c.statsWaiters[seq] = ch
	c.mu.Unlock()
	if err := c.tr.Send(site, &wire.StatsReq{Seq: seq, ClientAddr: c.tr.Addr()}); err != nil {
		c.mu.Lock()
		delete(c.statsWaiters, seq)
		c.mu.Unlock()
		return nil, err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case resp := <-ch:
		return resp, nil
	case <-timer.C:
		c.mu.Lock()
		delete(c.statsWaiters, seq)
		c.mu.Unlock()
		return nil, ErrTimeout
	}
}

// Exec submits a query to the originator site and waits for the answer. On
// timeout it asks the originator to abort and returns the partial answer
// with ErrTimeout.
func (c *Client) Exec(origin object.SiteID, body string, initial []object.ID, timeout time.Duration) (*wire.Complete, error) {
	return c.ExecBudget(origin, body, initial, 0, timeout)
}

// ExecBudget is Exec with a server-side time budget: the budget rides the
// Submit, shrinks on every cross-site hop, and an expired query comes back
// as a partial answer with Reason set — even if this client never follows
// up. Zero budget imposes none. An admission-control refusal returns
// ErrRejected.
func (c *Client) ExecBudget(origin object.SiteID, body string, initial []object.ID, budget, timeout time.Duration) (*wire.Complete, error) {
	c.mu.Lock()
	c.next++
	qid := wire.QueryID{Origin: origin, Seq: c.next}
	ch := make(chan clientReply, 1)
	c.waiters[qid] = ch
	c.mu.Unlock()

	sub := &wire.Submit{
		QID: qid, Client: c.tr.Self(), ClientAddr: c.tr.Addr(),
		Body: body, Initial: initial,
	}
	if budget > 0 {
		sub.BudgetUS = uint64(budget.Microseconds())
		if sub.BudgetUS == 0 {
			sub.BudgetUS = 1 // sub-microsecond budgets round up, not off
		}
	}
	if err := c.tr.Send(origin, sub); err != nil {
		c.drop(qid)
		return nil, err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		return c.finish(r)
	case <-timer.C:
		// Ask the originator to cancel and ship whatever it has.
		c.mu.Lock()
		c.waiters[qid] = ch
		c.mu.Unlock()
		if err := c.tr.Send(origin, &wire.Cancel{QID: qid, Reason: "cancelled by client"}); err != nil {
			c.drop(qid)
			return nil, fmt.Errorf("%w (cancel also failed: %v)", ErrTimeout, err)
		}
		select {
		case r := <-ch:
			res, err := c.finish(r)
			if err != nil {
				return nil, err
			}
			return res, ErrTimeout
		case <-time.After(5 * time.Second):
			c.drop(qid)
			return nil, ErrTimeout
		}
	}
}

// Cancel asks the originator to cancel a running query. The query's Exec
// call (if still waiting) receives the partial answer; cancelling an
// unknown or finished query is a no-op.
func (c *Client) Cancel(qid wire.QueryID) error {
	return c.tr.Send(qid.Origin, &wire.Cancel{QID: qid, Reason: "cancelled by client"})
}

func (c *Client) finish(r clientReply) (*wire.Complete, error) {
	if r.reject != nil {
		return nil, fmt.Errorf("%w: %s", ErrRejected, r.reject.Reason)
	}
	if r.complete.Err != "" {
		return nil, fmt.Errorf("server: query failed: %s", r.complete.Err)
	}
	return r.complete, nil
}

func (c *Client) drop(qid wire.QueryID) {
	c.mu.Lock()
	delete(c.waiters, qid)
	c.mu.Unlock()
}
