package server

import (
	"errors"
	"net"
	"testing"
	"time"

	"hyperfile/internal/naming"
	"hyperfile/internal/object"
	"hyperfile/internal/site"
	"hyperfile/internal/store"
	"hyperfile/internal/transport"
	"hyperfile/internal/waitfor"
)

// testDeployment spins n servers plus a client on loopback, fully meshed.
func testDeployment(t *testing.T, n int) ([]*Server, []*store.Store, *Client) {
	return testDeploymentOpts(t, n, Options{})
}

// testDeploymentOpts is testDeployment with explicit server options.
func testDeploymentOpts(t *testing.T, n int, opts Options) ([]*Server, []*store.Store, *Client) {
	t.Helper()
	return testDeploymentCfg(t, n, opts, nil)
}

// testDeploymentCfg additionally lets the caller tweak each site's Config.
func testDeploymentCfg(t *testing.T, n int, opts Options, tweak func(*site.Config)) ([]*Server, []*store.Store, *Client) {
	t.Helper()
	servers := make([]*Server, n)
	stores := make([]*store.Store, n)
	ids := make([]object.SiteID, n)
	for i := range ids {
		ids[i] = object.SiteID(i + 1)
	}
	for i, id := range ids {
		peers := make([]object.SiteID, 0, n-1)
		for _, o := range ids {
			if o != id {
				peers = append(peers, o)
			}
		}
		stores[i] = store.New(id)
		cfg := site.Config{ID: id, Store: stores[i], Peers: peers}
		if tweak != nil {
			tweak(&cfg)
		}
		srv, err := NewOpts(cfg, "127.0.0.1:0", nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = srv
		t.Cleanup(srv.Close)
	}
	for _, a := range servers {
		for _, b := range servers {
			if a != b {
				a.AddPeer(b.ID(), b.Addr())
			}
		}
	}
	client, err := NewClient(100, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)
	for _, s := range servers {
		client.AddServer(s.ID(), s.Addr())
		s.AddPeer(client.ID(), client.Addr())
	}
	return servers, stores, client
}

// loadRing stores a cross-site ring of size objs*count.
func loadServerRing(t *testing.T, stores []*store.Store, n int) []object.ID {
	t.Helper()
	objs := make([]*object.Object, n)
	for i := range objs {
		objs[i] = stores[i%len(stores)].NewObject()
	}
	ids := make([]object.ID, n)
	for i, o := range objs {
		ids[i] = o.ID
		key := "cold"
		if i%2 == 0 {
			key = "hot"
		}
		o.Add("keyword", object.Keyword(key), object.Value{})
		o.Add("Pointer", object.String("Reference"), object.Pointer(objs[(i+1)%n].ID))
		if err := stores[i%len(stores)].Put(o); err != nil {
			t.Fatal(err)
		}
	}
	return ids
}

const tcpClosure = `S [ (Pointer, "Reference", ?X) ^^X ]** (keyword, "hot", ?) -> T`

func TestTCPQueryEndToEnd(t *testing.T) {
	_, stores, client := testDeployment(t, 3)
	ids := loadServerRing(t, stores, 30)
	cm, err := client.Exec(1, tcpClosure, ids[:1], 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(cm.IDs) != 15 || cm.Count != 15 {
		t.Errorf("results = %d ids count %d, want 15", len(cm.IDs), cm.Count)
	}
}

// TestTCPBatchedDerefEndToEnd is TestTCPQueryEndToEnd with deref batching
// on: the batched frame must cross the real TCP transport and leave the
// answer unchanged.
func TestTCPBatchedDerefEndToEnd(t *testing.T) {
	_, stores, client := testDeploymentCfg(t, 3, Options{},
		func(cfg *site.Config) { cfg.DerefBatch = 4 })
	ids := loadServerRing(t, stores, 30)
	cm, err := client.Exec(1, tcpClosure, ids[:1], 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(cm.IDs) != 15 || cm.Count != 15 {
		t.Errorf("results = %d ids count %d, want 15", len(cm.IDs), cm.Count)
	}
}

func TestTCPFetchValues(t *testing.T) {
	_, stores, client := testDeployment(t, 2)
	a := stores[0].NewObject().Add("String", object.String("Title"), object.String("A"))
	b := stores[1].NewObject().Add("String", object.String("Title"), object.String("B"))
	a.Add("Pointer", object.String("Reference"), object.Pointer(b.ID))
	for i, o := range []*object.Object{a, b} {
		if err := stores[i].Put(o); err != nil {
			t.Fatal(err)
		}
	}
	cm, err := client.Exec(1,
		`S (Pointer, "Reference", ?X) ^^X (String, "Title", ->title) -> T`,
		[]object.ID{a.ID}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(cm.Fetches) != 2 {
		t.Errorf("fetches = %v", cm.Fetches)
	}
}

func TestTCPQueryError(t *testing.T) {
	_, _, client := testDeployment(t, 1)
	if _, err := client.Exec(1, "garbage", nil, 5*time.Second); err == nil {
		t.Error("expected parse error")
	}
}

func TestTCPMultipleSequentialQueries(t *testing.T) {
	_, stores, client := testDeployment(t, 3)
	ids := loadServerRing(t, stores, 18)
	for i := 0; i < 5; i++ {
		cm, err := client.Exec(object.SiteID(i%3+1), tcpClosure, ids[:1], 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if len(cm.IDs) != 9 {
			t.Errorf("query %d: results = %d", i, len(cm.IDs))
		}
	}
}

// TestTCPClientRestartSameSiteID restarts the client process between two
// queries through the same origin: a fresh Client with the same site id but
// a new address and new query ids. Regression test — sites tombstone
// finished query ids, so if a restarted client reused an id, its query
// would be mistaken for a straggler of the old one and hang.
func TestTCPClientRestartSameSiteID(t *testing.T) {
	servers, stores, client := testDeployment(t, 3)
	ids := loadServerRing(t, stores, 18)
	cm, err := client.Exec(1, tcpClosure, ids[:1], 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(cm.IDs) != 9 {
		t.Fatalf("first client: results = %d, want 9", len(cm.IDs))
	}
	client.Close()
	// Wait until the first query's Finish messages have settled: every
	// participant has dropped its context and laid a tombstone — the window
	// where a reused query id would be mistaken for a straggler.
	if err := waitfor.Until(5*time.Second, func() bool {
		for _, s := range servers {
			if s.Metrics().Snapshot().Gauges["site_live_contexts"] != 0 {
				return false
			}
		}
		return true
	}); err != nil {
		t.Fatalf("query contexts never drained: %v", err)
	}

	second, err := NewClient(client.ID(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	for _, s := range servers {
		second.AddServer(s.ID(), s.Addr())
	}
	cm, err = second.Exec(1, tcpClosure, ids[:1], 10*time.Second)
	if err != nil {
		t.Fatalf("restarted client: %v", err)
	}
	if len(cm.IDs) != 9 {
		t.Errorf("restarted client: results = %d, want 9", len(cm.IDs))
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	_, stores, client := testDeployment(t, 3)
	ids := loadServerRing(t, stores, 18)
	errs := make(chan error, 6)
	for i := 0; i < 6; i++ {
		origin := object.SiteID(i%3 + 1)
		go func() {
			cm, err := client.Exec(origin, tcpClosure, ids[:1], 10*time.Second)
			if err == nil && len(cm.IDs) != 9 {
				err = errors.New("wrong result count")
			}
			errs <- err
		}()
	}
	for i := 0; i < 6; i++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
}

func TestTCPDownServerPartialResults(t *testing.T) {
	servers, stores, client := testDeployment(t, 3)
	ids := loadServerRing(t, stores, 12)
	servers[2].Close() // site 3 goes down
	cm, err := client.Exec(1, tcpClosure, ids[:1], 2*time.Second)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if cm == nil || !cm.Partial {
		t.Fatalf("expected partial answer, got %+v", cm)
	}
	for _, id := range cm.IDs {
		if id.Birth == 3 {
			t.Errorf("result %v from downed site", id)
		}
	}
	// The surviving sites keep answering (initial set avoids the dead site).
	cm2, err := client.Exec(2, `S (keyword, "hot", ?) -> T`, ids[0:2], 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(cm2.IDs) != 1 {
		t.Errorf("follow-up results = %v", cm2.IDs)
	}
}

// TestTCPPeerFailureDetectedPartialAnswer kills a server with the failure
// detector enabled: the survivors declare it dead, skip it for new work, and
// the query completes normally — no client timeout — with a partial answer
// naming the unreachable site.
func TestTCPPeerFailureDetectedPartialAnswer(t *testing.T) {
	servers, stores, client := testDeploymentOpts(t, 3, Options{
		HeartbeatInterval: 25 * time.Millisecond,
		SuspectAfter:      150 * time.Millisecond,
		Transport: transport.Options{
			RetransmitBase: 5 * time.Millisecond,
			RetransmitMax:  50 * time.Millisecond,
			MaxAttempts:    10,
		},
	})
	ids := loadServerRing(t, stores, 12)
	servers[2].Close() // site 3 crashes
	// Wait for the survivors' detectors to declare site 3 dead.
	if err := waitfor.Until(5*time.Second, func() bool {
		return servers[0].PeerIsDown(3) && servers[1].PeerIsDown(3)
	}); err != nil {
		t.Fatalf("survivors never suspected the dead site: %v", err)
	}
	cm, err := client.Exec(1, tcpClosure, ids[:1], 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !cm.Partial {
		t.Fatalf("expected a partial answer, got %+v", cm)
	}
	if len(cm.Unreachable) != 1 || cm.Unreachable[0] != 3 {
		t.Errorf("Unreachable = %v, want [3]", cm.Unreachable)
	}
	for _, id := range cm.IDs {
		if id.Birth == 3 {
			t.Errorf("result %v from dead site", id)
		}
	}
}

func TestServerStats(t *testing.T) {
	servers, stores, client := testDeployment(t, 2)
	ids := loadServerRing(t, stores, 8)
	if _, err := client.Exec(1, tcpClosure, ids[:1], 10*time.Second); err != nil {
		t.Fatal(err)
	}
	// The ring alternates sites, so site 1 must have sent remote derefs and
	// completed the query; site 2 must have processed objects.
	st1 := servers[0].Stats()
	st2 := servers[1].Stats()
	if st1.DerefsSent == 0 || st1.Completed != 1 {
		t.Errorf("site 1 stats: %+v", st1)
	}
	if st2.Engine.Processed != 4 {
		t.Errorf("site 2 processed %d, want 4", st2.Engine.Processed)
	}
}

func TestClientStats(t *testing.T) {
	_, stores, client := testDeployment(t, 2)
	ids := loadServerRing(t, stores, 6)
	if _, err := client.Exec(1, tcpClosure, ids[:1], 10*time.Second); err != nil {
		t.Fatal(err)
	}
	resp, err := client.Stats(1, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Site != 1 || resp.Objects != 3 {
		t.Errorf("stats = %+v", resp)
	}
	counters := map[string]uint64{}
	for _, c := range resp.Counters {
		counters[c.Name] = c.Value
	}
	if counters["completed"] != 1 || counters["objects_processed"] == 0 {
		t.Errorf("counters = %v", counters)
	}
	// Stats from a dead site time out.
	if _, err := client.Stats(9, 200*time.Millisecond); err == nil {
		t.Error("expected stats error for unknown site")
	}
}

func TestServerSurvivesGarbageFrames(t *testing.T) {
	servers, stores, client := testDeployment(t, 1)
	o := stores[0].NewObject().Add("keyword", object.Keyword("ok"), object.Value{})
	if err := stores[0].Put(o); err != nil {
		t.Fatal(err)
	}
	// Raw garbage on the wire: the server drops the connection and keeps
	// serving everyone else.
	conn, err := net.Dial("tcp", servers[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte{0, 0, 0, 4, 0, 0, 0, 9, 0xde, 0xad, 0xbe, 0xef}); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	// A protocol-legal but misdirected message (Complete at a server) is
	// rejected by the site and logged; the server keeps serving too.
	cm, err := client.Exec(1, `S (keyword, "ok", ?) -> T`, []object.ID{o.ID}, 5*time.Second)
	if err != nil || len(cm.IDs) != 1 {
		t.Fatalf("exec after garbage: %v %v", cm, err)
	}
}

// TestContextsCleanedAcrossManyQueries: contexts must not leak.
func TestContextsCleanedAcrossManyQueries(t *testing.T) {
	servers, stores, client := testDeployment(t, 2)
	ids := loadServerRing(t, stores, 8)
	for i := 0; i < 10; i++ {
		if _, err := client.Exec(object.SiteID(i%2+1), tcpClosure, ids[:1], 10*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	for _, srv := range servers {
		resp, err := client.Stats(srv.ID(), 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Contexts != 0 {
			t.Errorf("site %v leaks %d contexts", resp.Site, resp.Contexts)
		}
	}
}

// BenchmarkTCPQuery measures end-to-end distributed query latency over real
// loopback TCP (two sites, cross-site ring of 8).
func BenchmarkTCPQuery(b *testing.B) {
	stores := []*store.Store{store.New(1), store.New(2)}
	var servers []*Server
	for i, st := range stores {
		id := object.SiteID(i + 1)
		peer := object.SiteID(2 - i)
		srv, err := New(site.Config{ID: id, Store: st, Peers: []object.SiteID{peer}}, "127.0.0.1:0", nil)
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		servers = append(servers, srv)
	}
	servers[0].AddPeer(2, servers[1].Addr())
	servers[1].AddPeer(1, servers[0].Addr())
	client, err := NewClient(100, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	for _, s := range servers {
		client.AddServer(s.ID(), s.Addr())
		s.AddPeer(client.ID(), client.Addr())
	}
	objs := make([]*object.Object, 8)
	for i := range objs {
		objs[i] = stores[i%2].NewObject()
	}
	var root object.ID
	for i, o := range objs {
		if i == 0 {
			root = o.ID
		}
		o.Add("keyword", object.Keyword("hot"), object.Value{})
		o.Add("Pointer", object.String("Reference"), object.Pointer(objs[(i+1)%8].ID))
		if err := stores[i%2].Put(o); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cm, err := client.Exec(1, tcpClosure, []object.ID{root}, 10*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		if len(cm.IDs) != 8 {
			b.Fatalf("results = %d", len(cm.IDs))
		}
	}
}

// TestTCPLiveMigration exercises the full migration protocol over real TCP:
// Migrate -> MigrateData -> MigrateDone -> Migrated, then queries that
// forward through the naming chain.
func TestTCPLiveMigration(t *testing.T) {
	const n = 3
	stores := make([]*store.Store, n)
	dirs := make([]*naming.Directory, n)
	servers := make([]*Server, n)
	for i := 0; i < n; i++ {
		id := object.SiteID(i + 1)
		stores[i] = store.New(id)
		dirs[i] = naming.New(id)
		var peers []object.SiteID
		for j := 0; j < n; j++ {
			if j != i {
				peers = append(peers, object.SiteID(j+1))
			}
		}
		srv, err := New(site.Config{
			ID: id, Store: stores[i], Router: dirs[i], Directory: dirs[i], Peers: peers,
		}, "127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		servers[i] = srv
	}
	for _, a := range servers {
		for _, b := range servers {
			if a != b {
				a.AddPeer(b.ID(), b.Addr())
			}
		}
	}
	client, err := NewClient(100, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	for _, s := range servers {
		client.AddServer(s.ID(), s.Addr())
		s.AddPeer(client.ID(), client.Addr())
	}

	// Ring of 6 with naming registration.
	objs := make([]*object.Object, 6)
	for i := range objs {
		objs[i] = stores[i%n].NewObject()
	}
	ids := make([]object.ID, 6)
	for i, o := range objs {
		ids[i] = o.ID
		o.Add("keyword", object.Keyword("hot"), object.Value{})
		o.Add("Pointer", object.String("Reference"), object.Pointer(objs[(i+1)%6].ID))
		if err := stores[i%n].Put(o); err != nil {
			t.Fatal(err)
		}
		dirs[i%n].Register(o.ID)
	}

	// Move ids[1] (born at site 2) to site 3, live.
	if err := client.Migrate(ids[1], 3, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, ok := stores[2].Get(ids[1]); !ok {
		t.Error("object missing at new site")
	}
	// Full closure still answers via forwarding.
	cm, err := client.Exec(1, tcpClosure, ids[:1], 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(cm.IDs) != 6 {
		t.Errorf("results after migration = %d, want 6", len(cm.IDs))
	}
	// Second move goes through the birth site's (eventually updated)
	// authority chain.
	if werr := waitfor.Until(5*time.Second, func() bool {
		err = client.Migrate(ids[1], 1, 5*time.Second)
		return err == nil
	}); werr != nil {
		t.Fatalf("second migration never succeeded: %v", err)
	}
	if _, ok := stores[0].Get(ids[1]); !ok {
		t.Error("object missing after second migration")
	}
	// Migration of a nonexistent object reports failure.
	if err := client.Migrate(object.ID{Birth: 1, Seq: 9999}, 2, 5*time.Second); err == nil {
		t.Error("expected failure for unknown object")
	}
}

func TestLoadObjects(t *testing.T) {
	servers, stores, client := testDeployment(t, 1)
	o := stores[0].NewObject().Add("keyword", object.Keyword("hot"), object.Value{})
	if err := servers[0].LoadObjects([]*object.Object{o}); err != nil {
		t.Fatal(err)
	}
	cm, err := client.Exec(1, `S (keyword, "hot", ?) -> T`, []object.ID{o.ID}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(cm.IDs) != 1 {
		t.Errorf("results = %v", cm.IDs)
	}
}
