package pattern

import (
	"strings"

	"hyperfile/internal/object"
)

// Pattern specialization: the generic P.Matches re-switches on the operator
// for every tuple of every object. A physical plan instead calls Compile once
// per field pattern and gets back a closure that tests exactly one operator —
// literal equality, substring scan, regex, range, or environment lookup —
// with the dispatch already resolved.

// FieldMatch is a compiled field pattern: it reports whether v satisfies the
// pattern under env, with identical semantics to P.Matches.
type FieldMatch func(v object.Value, env Env) bool

// Compile returns the specialized matcher for p. The returned closure is
// semantically identical to p.Matches.
func (p P) Compile() FieldMatch {
	switch p.Op {
	case OpAny, OpBind, OpFetch:
		// Bind and fetch are effects, applied by the caller after the whole
		// tuple matches; as matchers they accept everything.
		return matchAny
	case OpLiteral:
		if isText(p.Lit) {
			// Text literals match both strings and keywords (kind-insensitive).
			want := p.Lit.Str
			return func(v object.Value, _ Env) bool {
				return isText(v) && v.Str == want
			}
		}
		if p.Lit.IsNumeric() {
			want := p.Lit.AsFloat()
			return func(v object.Value, _ Env) bool {
				return v.IsNumeric() && v.AsFloat() == want
			}
		}
		lit := p.Lit
		return func(v object.Value, _ Env) bool { return v.Equal(lit) }
	case OpSubstring:
		want := p.Lit.Str
		return func(v object.Value, _ Env) bool {
			return isText(v) && strings.Contains(v.Str, want)
		}
	case OpRegex:
		re := p.re
		if re == nil {
			return matchNone
		}
		return func(v object.Value, _ Env) bool {
			return isText(v) && re.MatchString(v.Str)
		}
	case OpRange:
		lo, hi := p.Lo, p.Hi
		return func(v object.Value, _ Env) bool {
			if !v.IsNumeric() {
				return false
			}
			f := v.AsFloat()
			return f >= lo && f <= hi
		}
	case OpUse:
		name := p.Var
		return func(v object.Value, env Env) bool {
			for _, b := range env.Lookup(name) {
				if b.Equal(v) {
					return true
				}
			}
			return false
		}
	default:
		return matchNone
	}
}

func matchAny(object.Value, Env) bool  { return true }
func matchNone(object.Value, Env) bool { return false }

// UsesVar reports whether the pattern tests against a matching variable's
// current bindings ("$X"), returning the variable name. Such a pattern is
// environment-dependent: its outcome can differ between tuples of the same
// object as earlier tuples add bindings.
func (p P) UsesVar() (string, bool) {
	if p.Op == OpUse {
		return p.Var, true
	}
	return "", false
}

// EffectFree reports whether matching the pattern has no side effects: it
// neither binds a matching variable nor fetches a field value. A selection
// whose field patterns are all effect-free can stop scanning tuples at the
// first match.
func (p P) EffectFree() bool {
	return p.Op != OpBind && p.Op != OpFetch
}

// LiteralValue returns the literal a pattern compares against, for index
// pushdown. Only OpLiteral patterns have one.
func (p P) LiteralValue() (object.Value, bool) {
	if p.Op == OpLiteral {
		return p.Lit, true
	}
	return object.Value{}, false
}

// IsAny reports whether the pattern is the bare wildcard (no test, no
// effects) — distinct from OpBind/OpFetch, which also match everything but
// carry effects.
func (p P) IsAny() bool { return p.Op == OpAny }
