package pattern

import (
	"math"
	"testing"
	"testing/quick"

	"hyperfile/internal/object"
)

func TestEnvBindDedup(t *testing.T) {
	env := Env{}
	env.Bind("X", object.String("a"))
	env.Bind("X", object.String("a"))
	env.Bind("X", object.String("b"))
	if got := len(env.Lookup("X")); got != 2 {
		t.Errorf("Lookup(X) = %d values, want 2 (dedup)", got)
	}
	if got := env.Lookup("Y"); got != nil {
		t.Errorf("Lookup(Y) = %v, want nil", got)
	}
}

func TestEnvCloneIndependence(t *testing.T) {
	env := Env{}
	env.Bind("X", object.Int(1))
	c := env.Clone()
	c.Bind("X", object.Int(2))
	c.Bind("Y", object.Int(3))
	if len(env.Lookup("X")) != 1 || len(env.Lookup("Y")) != 0 {
		t.Errorf("Clone aliases original: %v", env)
	}
	var nilEnv Env
	if nilEnv.Clone() != nil {
		t.Errorf("nil env clone should be nil")
	}
}

func TestPatternMatches(t *testing.T) {
	id := object.ID{Birth: 2, Seq: 7}
	env := Env{"X": {object.String("bound"), object.Int(4)}}
	tests := []struct {
		name string
		p    P
		v    object.Value
		want bool
	}{
		{"any matches string", Any(), object.String("x"), true},
		{"any matches nil", Any(), object.Value{}, true},
		{"literal string eq", Str("abc"), object.String("abc"), true},
		{"literal string ne", Str("abc"), object.String("abd"), false},
		{"literal text cross-kind", Str("abc"), object.Keyword("abc"), true},
		{"literal text vs bytes", Str("abc"), object.Bytes([]byte("abc")), false},
		{"literal numeric cross-kind", Lit(object.Int(3)), object.Float(3), true},
		{"literal pointer", Lit(object.Pointer(id)), object.Pointer(id), true},
		{"substring hit", Substr("gram"), object.String("Programmer"), true},
		{"substring keyword hit", Substr("gram"), object.Keyword("Programmer"), true},
		{"substring miss", Substr("xyz"), object.String("Programmer"), false},
		{"substring non-string", Substr("1"), object.Int(1), false},
		{"range inside", Range(1, 10), object.Int(5), true},
		{"range low edge", Range(1, 10), object.Int(1), true},
		{"range high edge", Range(1, 10), object.Float(10), true},
		{"range outside", Range(1, 10), object.Int(11), false},
		{"range non-numeric", Range(1, 10), object.String("5"), false},
		{"bind matches anything", Bind("Z"), object.Pointer(id), true},
		{"fetch matches anything", Fetch("out"), object.Bytes([]byte{1}), true},
		{"use hit", Use("X"), object.String("bound"), true},
		{"use numeric hit", Use("X"), object.Float(4), true},
		{"use miss", Use("X"), object.String("unbound"), false},
		{"use unbound var", Use("W"), object.String("x"), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Matches(tt.v, env); got != tt.want {
				t.Errorf("%v.Matches(%v) = %v, want %v", tt.p, tt.v, got, tt.want)
			}
		})
	}
}

func TestMatchesIsPure(t *testing.T) {
	env := Env{}
	Bind("X").Matches(object.String("v"), env)
	Fetch("F").Matches(object.String("v"), env)
	if len(env) != 0 {
		t.Errorf("Matches must not mutate env; got %v", env)
	}
}

func TestBindsAndFetches(t *testing.T) {
	if v, ok := Bind("X").BindsVar(); !ok || v != "X" {
		t.Errorf("Bind.BindsVar = %q, %v", v, ok)
	}
	if _, ok := Any().BindsVar(); ok {
		t.Errorf("Any should not bind")
	}
	if v, ok := Fetch("out").FetchesVar(); !ok || v != "out" {
		t.Errorf("Fetch.FetchesVar = %q, %v", v, ok)
	}
	if _, ok := Bind("X").FetchesVar(); ok {
		t.Errorf("Bind should not fetch")
	}
}

func TestTypePattern(t *testing.T) {
	if !AnyType.Matches("whatever") {
		t.Errorf("AnyType should match all tags")
	}
	tp := Type("Pointer")
	if !tp.Matches("Pointer") || tp.Matches("pointer") {
		t.Errorf("literal type pattern is case-sensitive exact match")
	}
	if AnyType.String() != "?" || tp.String() != "Pointer" {
		t.Errorf("type pattern rendering wrong")
	}
}

func TestPatternStrings(t *testing.T) {
	tests := []struct {
		p    P
		want string
	}{
		{Any(), "?"},
		{Str("a"), `"a"`},
		{Substr("a"), `~"a"`},
		{Range(1, 2), "1..2"},
		{Bind("X"), "?X"},
		{Use("X"), "$X"},
		{Fetch("f"), "->f"},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

// Property: a literal pattern built from any numeric value matches that value.
func TestQuickLiteralReflexive(t *testing.T) {
	f := func(n int64) bool {
		return Lit(object.Int(n)).Matches(object.Int(n), nil)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: range [lo, hi] matches v iff lo <= v <= hi for finite floats.
func TestQuickRangeSemantics(t *testing.T) {
	f := func(a, b, v float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(v) {
			return true
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		want := v >= lo && v <= hi
		return Range(lo, hi).Matches(object.Float(v), nil) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Use matches exactly the values previously bound.
func TestQuickBindUseConsistent(t *testing.T) {
	f := func(vals []int64, probe int64) bool {
		env := Env{}
		want := false
		for _, v := range vals {
			env.Bind("X", object.Int(v))
			if v == probe {
				want = true
			}
		}
		return Use("X").Matches(object.Int(probe), env) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
