// Package pattern implements the pattern language used in HyperFile tuple
// selection filters (paper section 3): literals, wildcards, substring match,
// numeric ranges, and matching variables that bind or test against per-object
// binding environments.
package pattern

import (
	"fmt"
	"regexp"
	"strings"

	"hyperfile/internal/object"
)

// Env is a per-object matching-variable environment: the paper's O.mvars,
// a function from variable name to the set of values bound so far. A nil Env
// is valid and empty.
type Env map[string][]object.Value

// Bind appends v to the binding set for name, skipping exact duplicates.
func (e Env) Bind(name string, v object.Value) {
	for _, old := range e[name] {
		if old.Equal(v) {
			return
		}
	}
	e[name] = append(e[name], v)
}

// Lookup returns the values bound to name (nil if none).
func (e Env) Lookup(name string) []object.Value { return e[name] }

// Clone returns a deep-enough copy: the per-variable slices are copied so
// that later binds on the clone do not alias the original.
func (e Env) Clone() Env {
	if e == nil {
		return nil
	}
	c := make(Env, len(e))
	for k, vs := range e {
		c[k] = append([]object.Value(nil), vs...)
	}
	return c
}

// Op identifies the pattern operator.
type Op uint8

const (
	// OpAny matches any value ("?").
	OpAny Op = iota
	// OpLiteral matches a value equal to Lit.
	OpLiteral
	// OpSubstring matches string/keyword values containing Lit.Str.
	OpSubstring
	// OpRegex matches string/keyword values against a regular expression
	// (the paper names regular expressions as a string comparison form).
	OpRegex
	// OpRange matches numeric values in [Lo, Hi] (inclusive).
	OpRange
	// OpBind matches any value and binds it to Var ("?X").
	OpBind
	// OpUse matches a value equal to any current binding of Var ("$X").
	OpUse
	// OpFetch matches any value and marks it for retrieval into the client
	// binding named Var (the paper's "->title" operator).
	OpFetch
)

var opNames = [...]string{
	OpAny:       "any",
	OpLiteral:   "literal",
	OpSubstring: "substring",
	OpRegex:     "regex",
	OpRange:     "range",
	OpBind:      "bind",
	OpUse:       "use",
	OpFetch:     "fetch",
}

// String returns the operator name.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", o)
}

// P is one field pattern. The zero P is OpAny.
type P struct {
	Op     Op
	Lit    object.Value // OpLiteral, OpSubstring; OpRegex keeps the source
	Lo, Hi float64      // OpRange
	Var    string       // OpBind, OpUse, OpFetch
	re     *regexp.Regexp
}

// Any returns the wildcard pattern.
func Any() P { return P{Op: OpAny} }

// Lit returns an exact-equality pattern.
func Lit(v object.Value) P { return P{Op: OpLiteral, Lit: v} }

// Str is shorthand for Lit(object.String(s)).
func Str(s string) P { return Lit(object.String(s)) }

// Substr returns a substring pattern over string/keyword values.
func Substr(s string) P { return P{Op: OpSubstring, Lit: object.String(s)} }

// Regex compiles a regular-expression pattern over string/keyword values.
func Regex(src string) (P, error) {
	re, err := regexp.Compile(src)
	if err != nil {
		return P{}, fmt.Errorf("pattern: bad regex: %w", err)
	}
	return P{Op: OpRegex, Lit: object.String(src), re: re}, nil
}

// MustRegex is Regex for known-good expressions; it panics on error.
func MustRegex(src string) P {
	p, err := Regex(src)
	if err != nil {
		panic(err)
	}
	return p
}

// Range returns an inclusive numeric range pattern.
func Range(lo, hi float64) P { return P{Op: OpRange, Lo: lo, Hi: hi} }

// Bind returns a matching-variable binding pattern ("?X").
func Bind(name string) P { return P{Op: OpBind, Var: name} }

// Use returns a matching-variable test pattern ("$X").
func Use(name string) P { return P{Op: OpUse, Var: name} }

// Fetch returns a retrieval pattern ("->name").
func Fetch(name string) P { return P{Op: OpFetch, Var: name} }

// Matches reports whether v satisfies the pattern under env. Matches is
// side-effect free: OpBind and OpFetch match like OpAny here; the caller
// applies bindings/fetches only after the whole tuple matches, per the paper
// ("the ?X adds the field value to the bindings for X if the tuple otherwise
// matches").
func (p P) Matches(v object.Value, env Env) bool {
	switch p.Op {
	case OpAny, OpBind, OpFetch:
		return true
	case OpLiteral:
		// Text literals match both strings and keywords: queries should not
		// care which of the two text kinds an application stored.
		if isText(p.Lit) && isText(v) {
			return p.Lit.Str == v.Str
		}
		return v.Equal(p.Lit)
	case OpSubstring:
		if v.Kind != object.KindString && v.Kind != object.KindKeyword {
			return false
		}
		return strings.Contains(v.Str, p.Lit.Str)
	case OpRegex:
		if v.Kind != object.KindString && v.Kind != object.KindKeyword {
			return false
		}
		return p.re != nil && p.re.MatchString(v.Str)
	case OpRange:
		if !v.IsNumeric() {
			return false
		}
		f := v.AsFloat()
		return f >= p.Lo && f <= p.Hi
	case OpUse:
		for _, b := range env.Lookup(p.Var) {
			if b.Equal(v) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

func isText(v object.Value) bool {
	return v.Kind == object.KindString || v.Kind == object.KindKeyword
}

// BindsVar reports whether a successful tuple match should bind v to a
// matching variable, returning the variable name.
func (p P) BindsVar() (string, bool) {
	if p.Op == OpBind {
		return p.Var, true
	}
	return "", false
}

// FetchesVar reports whether a successful tuple match should retrieve v into
// a client binding, returning the binding name.
func (p P) FetchesVar() (string, bool) {
	if p.Op == OpFetch {
		return p.Var, true
	}
	return "", false
}

// String renders the pattern in query syntax.
func (p P) String() string {
	switch p.Op {
	case OpAny:
		return "?"
	case OpLiteral:
		switch p.Lit.Kind {
		case object.KindPointer:
			// Query syntax for pointer literals ("@s3:114"); the value's
			// own rendering ("->s3:114") would collide with retrieval.
			return "@" + p.Lit.Ptr.String()
		case object.KindKeyword:
			// Keywords print quoted; literal text matching is
			// kind-insensitive so the reparse is semantically identical.
			return fmt.Sprintf("%q", p.Lit.Str)
		default:
			return p.Lit.String()
		}
	case OpSubstring:
		return "~" + p.Lit.String()
	case OpRegex:
		return "/" + strings.ReplaceAll(p.Lit.Str, "/", `\/`) + "/"
	case OpRange:
		return fmt.Sprintf("%g..%g", p.Lo, p.Hi)
	case OpBind:
		return "?" + p.Var
	case OpUse:
		return "$" + p.Var
	case OpFetch:
		return "->" + p.Var
	default:
		return "<badpat>"
	}
}

// TypePattern matches the tuple type tag: either a literal tag or the
// wildcard "?" (empty Name with Wild set).
type TypePattern struct {
	Wild bool
	Name string
}

// AnyType is the wildcard type pattern.
var AnyType = TypePattern{Wild: true}

// Type returns a literal type pattern.
func Type(name string) TypePattern { return TypePattern{Name: name} }

// Matches reports whether tag satisfies the type pattern.
func (tp TypePattern) Matches(tag string) bool { return tp.Wild || tp.Name == tag }

// String renders the type pattern in query syntax, quoting names that are
// not plain identifiers.
func (tp TypePattern) String() string {
	if tp.Wild {
		return "?"
	}
	if isPlainIdent(tp.Name) {
		return tp.Name
	}
	return fmt.Sprintf("%q", tp.Name)
}

// isPlainIdent reports whether s lexes as a bare identifier.
func isPlainIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r == '_',
			r >= 'a' && r <= 'z',
			r >= 'A' && r <= 'Z':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
