package pattern

import (
	"testing"

	"hyperfile/internal/object"
)

// FuzzPattern throws arbitrary operators, literals, and values at the
// matcher: Matches, String, BindsVar, and FetchesVar must never panic, and
// Matches must be deterministic and side-effect free on the environment.
func FuzzPattern(f *testing.F) {
	f.Add(uint8(0), uint8(1), "hello", int64(0), 0.0, 1.0, "X", uint8(1), "hello world", int64(0), 0.5)
	f.Add(uint8(1), uint8(2), "hot", int64(7), -1.0, 1.0, "Y", uint8(2), "hot", int64(7), 0.0)
	f.Add(uint8(2), uint8(1), "ell", int64(0), 0.0, 0.0, "", uint8(1), "hello", int64(0), 0.0)
	f.Add(uint8(3), uint8(1), "h.*o", int64(0), 0.0, 0.0, "re", uint8(2), "hallo", int64(0), 0.0)
	f.Add(uint8(4), uint8(3), "", int64(0), 2.5, 7.5, "", uint8(3), "", int64(5), 0.0)
	f.Add(uint8(5), uint8(1), "", int64(0), 0.0, 0.0, "X", uint8(4), "", int64(0), 3.25)
	f.Add(uint8(6), uint8(1), "bound", int64(0), 0.0, 0.0, "X", uint8(1), "bound", int64(0), 0.0)
	f.Add(uint8(7), uint8(0), "", int64(0), 0.0, 0.0, "title", uint8(0), "", int64(0), 0.0)
	f.Add(uint8(200), uint8(200), "\x00\xff", int64(-1), 2.0, -2.0, "\xf0", uint8(200), "\x00", int64(-1), -0.0)

	f.Fuzz(func(t *testing.T, op, litKind uint8, litStr string, litInt int64,
		lo, hi float64, varName string, valKind uint8, valStr string, valInt int64, valFloat float64) {

		mkValue := func(kind uint8, s string, n int64, fl float64) object.Value {
			switch kind % 6 {
			case 0:
				return object.Value{}
			case 1:
				return object.String(s)
			case 2:
				return object.Keyword(s)
			case 3:
				return object.Int(n)
			case 4:
				return object.Float(fl)
			default:
				return object.Pointer(object.ID{Birth: object.SiteID(n), Seq: uint64(n)})
			}
		}
		lit := mkValue(litKind, litStr, litInt, lo)
		val := mkValue(valKind, valStr, valInt, valFloat)

		var p P
		switch op % 8 {
		case 0:
			p = Any()
		case 1:
			p = Lit(lit)
		case 2:
			p = Substr(litStr)
		case 3:
			var err error
			if p, err = Regex(litStr); err != nil {
				p = Any() // invalid regex source: rejected at compile, nothing to match
			}
		case 4:
			p = Range(lo, hi)
		case 5:
			p = Bind(varName)
		case 6:
			p = Use(varName)
		case 7:
			p = Fetch(varName)
		}
		// An operator byte outside the known range must not panic either.
		if op >= 8 {
			p.Op = Op(op)
		}

		env := make(Env)
		env.Bind(varName, lit)
		before := len(env.Lookup(varName))

		m1 := p.Matches(val, env)
		m2 := p.Matches(val, env.Clone())
		if m1 != m2 {
			t.Fatalf("Matches not deterministic: %v then %v for %v on %v", m1, m2, p, val)
		}
		if got := len(env.Lookup(varName)); got != before {
			t.Fatalf("Matches mutated the environment: %d bindings, had %d", got, before)
		}
		_ = p.String()
		if name, ok := p.BindsVar(); ok && name != varName {
			t.Fatalf("BindsVar = %q, want %q", name, varName)
		}
		if name, ok := p.FetchesVar(); ok && name != varName {
			t.Fatalf("FetchesVar = %q, want %q", name, varName)
		}
		_ = Type(litStr).Matches(valStr)
	})
}
