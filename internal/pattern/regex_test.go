package pattern

import (
	"testing"

	"hyperfile/internal/object"
)

func TestRegexMatching(t *testing.T) {
	p := MustRegex(`^Joe .*mer$`)
	tests := []struct {
		v    object.Value
		want bool
	}{
		{object.String("Joe Programmer"), true},
		{object.Keyword("Joe Programmer"), true},
		{object.String("Programmer Joe"), false},
		{object.String("joe programmer"), false},
		{object.Int(7), false},
		{object.Bytes([]byte("Joe Programmer")), false},
	}
	for _, tt := range tests {
		if got := p.Matches(tt.v, nil); got != tt.want {
			t.Errorf("Matches(%v) = %v, want %v", tt.v, got, tt.want)
		}
	}
}

func TestRegexCompileError(t *testing.T) {
	if _, err := Regex("("); err == nil {
		t.Error("expected compile error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustRegex should panic on bad input")
		}
	}()
	MustRegex("(")
}

func TestRegexString(t *testing.T) {
	p := MustRegex(`a/b.*`)
	if got := p.String(); got != `/a\/b.*/` {
		t.Errorf("String = %q", got)
	}
	if OpRegex.String() != "regex" {
		t.Errorf("op name = %q", OpRegex.String())
	}
}

func TestRegexZeroValueSafe(t *testing.T) {
	// An OpRegex P without a compiled expression matches nothing rather
	// than panicking.
	p := P{Op: OpRegex, Lit: object.String("x")}
	if p.Matches(object.String("x"), nil) {
		t.Error("uncompiled regex matched")
	}
}
