// Package waitfor provides condition-polling helpers so tests (and tools)
// can wait on asynchronous state with a deadline and backoff instead of a
// bare time.Sleep — fixed sleeps are either too short on a loaded CI box or
// waste wall time everywhere else.
package waitfor

import (
	"fmt"
	"time"
)

// pollFloor and pollCeil bound the backoff between condition checks.
const (
	pollFloor = time.Millisecond
	pollCeil  = 50 * time.Millisecond
)

// Until polls cond with exponential backoff (1ms doubling to 50ms) until it
// reports true, failing with an error once deadline has elapsed.
func Until(deadline time.Duration, cond func() bool) error {
	limit := time.Now().Add(deadline)
	delay := pollFloor
	for {
		if cond() {
			return nil
		}
		if time.Now().After(limit) {
			return fmt.Errorf("waitfor: condition not met within %v", deadline)
		}
		time.Sleep(delay)
		if delay *= 2; delay > pollCeil {
			delay = pollCeil
		}
	}
}

// Stable polls value until it has not changed for quiet, returning the
// settled value. It fails once deadline has elapsed without the value
// holding still. Use it where a test must let stragglers (duplicate frames,
// late retransmissions) surface before asserting a final count.
func Stable[T comparable](deadline, quiet time.Duration, value func() T) (T, error) {
	limit := time.Now().Add(deadline)
	last := value()
	settledAt := time.Now()
	for {
		time.Sleep(pollFloor * 4)
		cur := value()
		if cur != last {
			last = cur
			settledAt = time.Now()
		} else if time.Since(settledAt) >= quiet {
			return last, nil
		}
		// Checked on every iteration — including ones where the value just
		// changed — so a value that never holds still cannot loop forever.
		if time.Now().After(limit) {
			var zero T
			return zero, fmt.Errorf("waitfor: value still changing after %v", deadline)
		}
	}
}
