package waitfor

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestUntilImmediate(t *testing.T) {
	if err := Until(time.Second, func() bool { return true }); err != nil {
		t.Fatal(err)
	}
}

func TestUntilEventually(t *testing.T) {
	var n atomic.Int64
	go func() {
		// lint:ignore baresleep the delayed flip IS the asynchronous condition Until is being tested against
		time.Sleep(20 * time.Millisecond)
		n.Store(1)
	}()
	if err := Until(5*time.Second, func() bool { return n.Load() == 1 }); err != nil {
		t.Fatal(err)
	}
}

func TestUntilTimesOut(t *testing.T) {
	start := time.Now()
	if err := Until(30*time.Millisecond, func() bool { return false }); err == nil {
		t.Fatal("expected timeout error")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("timeout far exceeded the deadline")
	}
}

func TestStableSettles(t *testing.T) {
	var n atomic.Int64
	go func() {
		for i := 0; i < 5; i++ {
			n.Add(1)
			// lint:ignore baresleep paced increments ARE the still-changing value Stable must wait out
			time.Sleep(2 * time.Millisecond)
		}
	}()
	v, err := Stable(5*time.Second, 50*time.Millisecond, func() int64 { return n.Load() })
	if err != nil {
		t.Fatal(err)
	}
	if v != 5 {
		t.Fatalf("settled at %d, want 5", v)
	}
}

func TestStableTimesOut(t *testing.T) {
	// The value changes on every observation, so it can never hold still
	// for the quiet window; mutating inside the value func (rather than
	// from a paced goroutine) keeps the test deterministic under load.
	var n int64
	if _, err := Stable(50*time.Millisecond, 40*time.Millisecond, func() int64 { n++; return n }); err == nil {
		t.Fatal("expected timeout error for ever-changing value")
	}
}
