package sim

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Scenario is a declarative spec for one deterministic simulator run: a
// topology (which compiles to a per-link latency matrix), a dataset and a
// query schedule, a seeded failure schedule, and the execution features to
// enable. Equal specs always compile to byte-identical runs; the spec JSON is
// embedded in every recorded trace so a trace alone re-simulates the run.
//
// The spec is pure data — it knows nothing about sites or engines. The
// cluster package compiles it (cluster.RunScenario); this package owns the
// vocabulary, the topology math, and the seeded schedule generators, so tools
// and tests can reason about scenarios without a cluster.
type Scenario struct {
	Name    string `json:"name"`
	Comment string `json:"comment,omitempty"`
	// Seed drives every random choice in the scenario: dataset generation,
	// topology wiring, query schedules. Equal seeds mean equal runs.
	Seed  int64 `json:"seed"`
	Sites int   `json:"sites"`

	Topology Topology  `json:"topology"`
	Workload Workload  `json:"workload"`
	Failures []Failure `json:"failures,omitempty"`
	Exec     Exec      `json:"exec,omitempty"`

	// TraceMessages records every inter-site delivery in the trace (one line
	// per message). Only sensible for small scenarios; the default trace
	// carries query lifecycle, failure, and summary events.
	TraceMessages bool `json:"trace_messages,omitempty"`
}

// Topology names an overlay graph over the sites. Link latency between two
// sites is their hop distance in the overlay times HopLatencyUS — the paper's
// single-Ethernet latency generalized to multi-hop interconnects.
type Topology struct {
	// Kind is one of "uniform" (every pair one hop — the paper's Ethernet),
	// "star" (site 1 is the hub), "ring", "tree" (balanced Degree-ary),
	// "hypergraph" (Edges seeded hyperedges of Degree sites each; sites
	// sharing a hyperedge are adjacent), or "p2p" (seeded random graph:
	// a ring backbone plus Degree random chords per site).
	Kind string `json:"kind"`
	// HopLatencyUS is the one-hop wire latency in microseconds (default:
	// the cost model's Latency, i.e. the paper's 10ms).
	HopLatencyUS int64 `json:"hop_latency_us,omitempty"`
	// Degree parameterizes the kind: tree arity, hyperedge size, or p2p
	// chords per site.
	Degree int `json:"degree,omitempty"`
	// Edges is the hyperedge count (hypergraph only).
	Edges int `json:"edges,omitempty"`
	// ScalePct scales every link latency by this percentage (default 100).
	// Metamorphic tests raise it to check latency monotonicity.
	ScalePct int `json:"scale_pct,omitempty"`
}

// Workload describes the dataset and the query schedule.
type Workload struct {
	// Kind is "paper" (the section-5 generator from internal/workload:
	// chain/tree/random-locality pointers, the full key-tuple complement) or
	// "regions" (the scale-out generator: objects partitioned into bounded
	// traversal regions, built through the store bulk-load path, so
	// million-object datasets load in seconds).
	Kind    string `json:"kind"`
	Objects int    `json:"objects"`

	// StructureMachines pins the paper generator's logical graph to a
	// machine count independent of placement (see workload.Spec).
	StructureMachines int `json:"structure_machines,omitempty"`
	// Pointer/Class name the paper generator's traversal pointer class and
	// selection class for generated queries (e.g. "Tree" over "Rand10").
	Pointer string `json:"pointer,omitempty"`
	Class   string `json:"class,omitempty"`

	// RegionSize bounds each traversal region of the regions generator:
	// pointers never leave an object's region, so a query's closure touches
	// at most RegionSize objects no matter how large the dataset is.
	RegionSize int `json:"region_size,omitempty"`
	// LocalProb is the probability an object is placed on its region's home
	// site (the locality class); the rest scatter uniformly.
	LocalProb float64 `json:"local_prob,omitempty"`
	// Placement maps regions to home sites: "spread" round-robins over all
	// sites; "hot" concentrates every region on the first HotSites sites.
	Placement string `json:"placement,omitempty"`
	HotSites  int    `json:"hot_sites,omitempty"`
	// SelSpace is the selection-key space of the regions generator's "Sel"
	// tuple (default 10, the paper's Rand10 selectivity).
	SelSpace int `json:"sel_space,omitempty"`

	// Queries, when non-empty, is the explicit schedule (a recorded hfload
	// incident replays through this). Otherwise Count queries are generated
	// from the arrival spec below with the scenario seed.
	Queries []Query `json:"queries,omitempty"`
	Count   int     `json:"count,omitempty"`
	// Arrival is "batch" (all at t=0), "poisson" (seeded exponential gaps at
	// RateQPS in virtual time), or "flash" (a quarter trickle in at RateQPS,
	// the rest land together at FlashAtUS).
	Arrival   string  `json:"arrival,omitempty"`
	RateQPS   float64 `json:"rate_qps,omitempty"`
	FlashAtUS int64   `json:"flash_at_us,omitempty"`
	// Spread picks each generated query's target region: "roundrobin",
	// "uniform" (seeded), or "hot" (seeded, quadratically skewed toward
	// region 0 — the hot-spot pattern). Paper-kind queries ignore it.
	Spread string `json:"spread,omitempty"`
}

// Query is one scheduled query: submitted at virtual time AtUS from a client
// attached to Origin. Region selects the initial set: a region root for the
// regions generator, or -1 for the paper dataset's root object.
type Query struct {
	AtUS   int64  `json:"at_us"`
	Origin int    `json:"origin"`
	Body   string `json:"body"`
	Region int    `json:"region"`
}

// Failure is one scheduled fault at an exact virtual time.
//
//   - "partition": links between group A and group B (B empty = everyone
//     else) go down; messages sent across the cut queue in the reliable
//     transport and deliver after the healing event, exactly as the TCP
//     layer's retransmission would.
//   - "heal": every partitioned link comes back; queued messages flush.
//   - "crash": Site drops off permanently — inbound messages are lost, its
//     queries never answer, and querying it yields partial answers. DetectUS
//     after the crash (default 100ms) every live site's failure detector
//     declares it dead: engaged originators force-complete with the partial
//     answer and later queries suppress dereferences to the corpse, naming it
//     unreachable.
type Failure struct {
	AtUS     int64  `json:"at_us"`
	Kind     string `json:"kind"`
	A        []int  `json:"a,omitempty"`
	B        []int  `json:"b,omitempty"`
	Site     int    `json:"site,omitempty"`
	DetectUS int64  `json:"detect_us,omitempty"`
}

// Exec selects the execution features layered over the paper-exact pipeline.
type Exec struct {
	Workers        int  `json:"workers,omitempty"`
	DerefBatch     int  `json:"deref_batch,omitempty"`
	PlanCache      int  `json:"plan_cache,omitempty"`
	Index          bool `json:"index,omitempty"`
	ResultBatch    int  `json:"result_batch,omitempty"`
	FairQuantum    int  `json:"fair_quantum,omitempty"`
	MaxInflight    int  `json:"max_inflight,omitempty"`
	AdmissionQueue int  `json:"admission_queue,omitempty"`
}

// topologyKinds and the other enum sets double as validation tables.
var topologyKinds = map[string]bool{
	"uniform": true, "star": true, "ring": true,
	"tree": true, "hypergraph": true, "p2p": true,
}
var workloadKinds = map[string]bool{"paper": true, "regions": true}
var arrivalKinds = map[string]bool{"": true, "batch": true, "poisson": true, "flash": true}
var spreadKinds = map[string]bool{"": true, "roundrobin": true, "uniform": true, "hot": true}
var placementKinds = map[string]bool{"": true, "spread": true, "hot": true}
var failureKinds = map[string]bool{"partition": true, "heal": true, "crash": true}

// Validate checks the spec for structural errors. It does not mutate.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	if s.Sites < 1 {
		return fmt.Errorf("scenario %s: sites = %d", s.Name, s.Sites)
	}
	if !topologyKinds[s.Topology.Kind] {
		return fmt.Errorf("scenario %s: unknown topology kind %q", s.Name, s.Topology.Kind)
	}
	if s.Topology.HopLatencyUS < 0 || s.Topology.ScalePct < 0 {
		return fmt.Errorf("scenario %s: negative latency parameters", s.Name)
	}
	w := s.Workload
	if !workloadKinds[w.Kind] {
		return fmt.Errorf("scenario %s: unknown workload kind %q", s.Name, w.Kind)
	}
	if w.Objects < 1 {
		return fmt.Errorf("scenario %s: objects = %d", s.Name, w.Objects)
	}
	if !arrivalKinds[w.Arrival] {
		return fmt.Errorf("scenario %s: unknown arrival %q", s.Name, w.Arrival)
	}
	if !spreadKinds[w.Spread] {
		return fmt.Errorf("scenario %s: unknown spread %q", s.Name, w.Spread)
	}
	if !placementKinds[w.Placement] {
		return fmt.Errorf("scenario %s: unknown placement %q", s.Name, w.Placement)
	}
	if w.Kind == "regions" && w.RegionSize < 1 {
		return fmt.Errorf("scenario %s: regions workload needs region_size", s.Name)
	}
	if w.Placement == "hot" && w.HotSites < 1 {
		return fmt.Errorf("scenario %s: hot placement needs hot_sites", s.Name)
	}
	if len(w.Queries) == 0 && w.Count < 1 {
		return fmt.Errorf("scenario %s: no queries (set count or queries)", s.Name)
	}
	if (w.Arrival == "poisson" || w.Arrival == "flash") && w.RateQPS <= 0 && len(w.Queries) == 0 {
		return fmt.Errorf("scenario %s: %s arrivals need rate_qps", s.Name, w.Arrival)
	}
	for i, q := range w.Queries {
		if q.Origin < 1 || q.Origin > s.Sites {
			return fmt.Errorf("scenario %s: query %d origin %d out of range", s.Name, i, q.Origin)
		}
		if q.AtUS < 0 {
			return fmt.Errorf("scenario %s: query %d at_us < 0", s.Name, i)
		}
		if q.Body == "" {
			return fmt.Errorf("scenario %s: query %d has no body", s.Name, i)
		}
	}
	for i, f := range s.Failures {
		if !failureKinds[f.Kind] {
			return fmt.Errorf("scenario %s: failure %d: unknown kind %q", s.Name, i, f.Kind)
		}
		if f.AtUS < 0 || f.DetectUS < 0 {
			return fmt.Errorf("scenario %s: failure %d has a negative timestamp", s.Name, i)
		}
		if f.Kind == "crash" && (f.Site < 1 || f.Site > s.Sites) {
			return fmt.Errorf("scenario %s: failure %d: crash site %d out of range", s.Name, i, f.Site)
		}
		if f.Kind == "partition" && len(f.A) == 0 {
			return fmt.Errorf("scenario %s: failure %d: partition needs group a", s.Name, i)
		}
		for _, g := range [][]int{f.A, f.B} {
			for _, site := range g {
				if site < 1 || site > s.Sites {
					return fmt.Errorf("scenario %s: failure %d: site %d out of range", s.Name, i, site)
				}
			}
		}
	}
	return nil
}

// Regions returns the region count of a regions workload (0 for paper).
func (w Workload) Regions() int {
	if w.Kind != "regions" || w.RegionSize < 1 {
		return 0
	}
	return (w.Objects + w.RegionSize - 1) / w.RegionSize
}

// HomeSite is the deterministic region -> home-site map shared by the dataset
// builder and the query generator (1-based site numbers).
func (w Workload) HomeSite(region, sites int) int {
	if w.Placement == "hot" {
		hot := w.HotSites
		if hot > sites {
			hot = sites
		}
		return 1 + region%hot
	}
	return 1 + region%sites
}

// LatencyMatrix compiles the topology into an all-pairs link latency matrix
// (1-based site indices; m[u][v] is the one-way wire time from u to v). base
// is the cost model's single-hop latency, used when HopLatencyUS is zero.
func (s *Scenario) LatencyMatrix(base time.Duration) ([][]time.Duration, error) {
	n := s.Sites
	hop := base
	if s.Topology.HopLatencyUS > 0 {
		hop = time.Duration(s.Topology.HopLatencyUS) * time.Microsecond
	}
	scale := s.Topology.ScalePct
	if scale == 0 {
		scale = 100
	}

	adj, err := s.adjacency()
	if err != nil {
		return nil, err
	}
	m := make([][]time.Duration, n+1)
	for u := 1; u <= n; u++ {
		dist := bfs(adj, u, n)
		row := make([]time.Duration, n+1)
		for v := 1; v <= n; v++ {
			if u == v {
				continue
			}
			if dist[v] < 0 {
				return nil, fmt.Errorf("scenario %s: topology %q disconnects sites %d and %d",
					s.Name, s.Topology.Kind, u, v)
			}
			row[v] = time.Duration(dist[v]) * hop * time.Duration(scale) / 100
		}
		m[u] = row
	}
	return m, nil
}

// adjacency builds the overlay's undirected adjacency lists (1-based).
func (s *Scenario) adjacency() ([][]int, error) {
	n := s.Sites
	adj := make([][]int, n+1)
	link := func(u, v int) {
		if u == v {
			return
		}
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	}
	switch s.Topology.Kind {
	case "uniform":
		for u := 1; u <= n; u++ {
			for v := u + 1; v <= n; v++ {
				link(u, v)
			}
		}
	case "star":
		for v := 2; v <= n; v++ {
			link(1, v)
		}
	case "ring":
		for u := 1; u <= n; u++ {
			link(u, u%n+1)
		}
	case "tree":
		arity := s.Topology.Degree
		if arity < 2 {
			arity = 2
		}
		for v := 2; v <= n; v++ {
			link((v-2)/arity+1, v)
		}
	case "hypergraph":
		k := s.Topology.Degree
		if k < 2 {
			k = 3
		}
		edges := s.Topology.Edges
		if edges < 1 {
			edges = (n + k - 2) / (k - 1)
		}
		rng := rand.New(rand.NewSource(s.Seed ^ 0x68797065)) // "hype"
		// Hyperedge e covers the consecutive block of k sites starting at
		// e*(k-1), so neighboring edges share one site: with enough edges to
		// wrap the ring, the ring-of-cliques is connected by construction.
		// One seeded random member per edge adds cross-cluster chords.
		for e := 0; e < edges; e++ {
			seen := map[int]bool{}
			members := make([]int, 0, k+1)
			for j := 0; j < k; j++ {
				v := (e*(k-1)+j)%n + 1
				if !seen[v] {
					seen[v] = true
					members = append(members, v)
				}
			}
			if v := rng.Intn(n) + 1; !seen[v] {
				members = append(members, v)
			}
			for i := 0; i < len(members); i++ {
				for j := i + 1; j < len(members); j++ {
					link(members[i], members[j])
				}
			}
		}
	case "p2p":
		// Ring backbone guarantees connectivity; Degree seeded chords per
		// site make it a small-world random overlay.
		for u := 1; u <= n; u++ {
			link(u, u%n+1)
		}
		deg := s.Topology.Degree
		if deg < 1 {
			deg = 2
		}
		rng := rand.New(rand.NewSource(s.Seed ^ 0x70327020)) // "p2p "
		for u := 1; u <= n; u++ {
			for d := 0; d < deg; d++ {
				v := rng.Intn(n) + 1
				link(u, v)
			}
		}
	default:
		return nil, fmt.Errorf("scenario %s: unknown topology %q", s.Name, s.Topology.Kind)
	}
	// Dedup neighbor lists (hyperedges overlap, chords repeat).
	for u := 1; u <= n; u++ {
		sort.Ints(adj[u])
		out := adj[u][:0]
		for i, v := range adj[u] {
			if i == 0 || v != adj[u][i-1] {
				out = append(out, v)
			}
		}
		adj[u] = out
	}
	return adj, nil
}

// bfs returns hop distances from src (-1 = unreachable).
func bfs(adj [][]int, src, n int) []int {
	dist := make([]int, n+1)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// GenQueries returns the scenario's query schedule: the explicit list when
// given, otherwise Count queries generated with the scenario seed — arrival
// times from the arrival spec, origins round-robin over the sites, target
// regions from the spread spec, selection keys uniform over the key space.
func (s *Scenario) GenQueries() ([]Query, error) {
	w := s.Workload
	if len(w.Queries) > 0 {
		return w.Queries, nil
	}
	rng := rand.New(rand.NewSource(s.Seed ^ 0x71726965)) // "qrie"
	regions := w.Regions()
	selSpace := w.SelSpace
	if selSpace == 0 {
		selSpace = 10
	}

	queries := make([]Query, w.Count)
	at := time.Duration(0)
	trickle := 0
	if w.Arrival == "flash" {
		trickle = w.Count / 4
	}
	for i := range queries {
		switch w.Arrival {
		case "", "batch":
			// all at 0
		case "poisson":
			at += time.Duration(rng.ExpFloat64() / w.RateQPS * float64(time.Second))
		case "flash":
			if i < trickle {
				at += time.Duration(rng.ExpFloat64() / w.RateQPS * float64(time.Second))
			} else {
				at = time.Duration(w.FlashAtUS) * time.Microsecond
			}
		}
		q := Query{AtUS: at.Microseconds(), Region: -1}

		if w.Kind == "regions" {
			switch w.Spread {
			case "", "roundrobin":
				q.Region = i % regions
			case "uniform":
				q.Region = rng.Intn(regions)
			case "hot":
				u := rng.Float64()
				q.Region = int(float64(regions) * u * u * u)
				if q.Region >= regions {
					q.Region = regions - 1
				}
			}
			// Submitting at the region's home models clients near their
			// data; every fourth query originates elsewhere so the schedule
			// always exercises remote submission too.
			q.Origin = w.HomeSite(q.Region, s.Sites)
			if i%4 == 3 {
				q.Origin = rng.Intn(s.Sites) + 1
			}
			q.Body = RegionQuery(1 + rng.Intn(selSpace))
		} else {
			q.Origin = i%s.Sites + 1
			ptr, class := w.Pointer, w.Class
			if ptr == "" {
				ptr = "Tree"
			}
			if class == "" {
				class = "Rand10"
			}
			q.Body = fmt.Sprintf(`Root [ (Pointer, %q, ?X) ^^X ]** (%s, %d, ?) -> T`,
				ptr, class, 1+rng.Intn(selSpace))
		}
		queries[i] = q
	}
	return queries, nil
}

// RegionQuery is the regions generator's query template: traverse the
// region's "Link" closure and select objects whose Sel key equals key.
func RegionQuery(key int) string {
	return fmt.Sprintf(`Root [ (Pointer, "Link", ?X) ^^X ]** (Sel, %d, ?) -> T`, key)
}

// MarshalSpec renders the scenario as compact canonical JSON (field order is
// declaration order, so equal specs render byte-identically).
func MarshalSpec(s *Scenario) ([]byte, error) { return json.Marshal(s) }

// UnmarshalSpec parses and validates a scenario spec.
func UnmarshalSpec(b []byte) (*Scenario, error) {
	var s Scenario
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}
