package sim

import (
	"testing"
	"time"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	var l Loop
	var got []int
	l.At(30*time.Millisecond, func() { got = append(got, 3) })
	l.At(10*time.Millisecond, func() { got = append(got, 1) })
	l.At(20*time.Millisecond, func() { got = append(got, 2) })
	end := l.Run()
	if end != 30*time.Millisecond {
		t.Errorf("end time = %v", end)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order = %v", got)
	}
}

func TestSameTimeFIFO(t *testing.T) {
	var l Loop
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		l.At(5*time.Millisecond, func() { got = append(got, i) })
	}
	l.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", got)
		}
	}
}

func TestAfterIsRelative(t *testing.T) {
	var l Loop
	var at time.Duration
	l.At(10*time.Millisecond, func() {
		l.After(5*time.Millisecond, func() { at = l.Now() })
	})
	l.Run()
	if at != 15*time.Millisecond {
		t.Errorf("After fired at %v", at)
	}
}

func TestPastSchedulingClamps(t *testing.T) {
	var l Loop
	var at time.Duration
	l.At(10*time.Millisecond, func() {
		l.At(1*time.Millisecond, func() { at = l.Now() }) // in the past
	})
	l.Run()
	if at != 10*time.Millisecond {
		t.Errorf("past event fired at %v, want clamped to 10ms", at)
	}
}

func TestEventsCanCascade(t *testing.T) {
	var l Loop
	count := 0
	var step func()
	step = func() {
		count++
		if count < 100 {
			l.After(time.Millisecond, step)
		}
	}
	l.After(0, step)
	end := l.Run()
	if count != 100 {
		t.Errorf("count = %d", count)
	}
	if end != 99*time.Millisecond {
		t.Errorf("end = %v", end)
	}
}

func TestRunUntil(t *testing.T) {
	var l Loop
	count := 0
	for i := 0; i < 10; i++ {
		l.At(time.Duration(i)*time.Millisecond, func() { count++ })
	}
	ok := l.RunUntil(func() bool { return count == 5 })
	if !ok || count != 5 {
		t.Errorf("RunUntil stopped at count=%d ok=%v", count, ok)
	}
	if l.Pending() != 5 {
		t.Errorf("Pending = %d", l.Pending())
	}
	// Resume to completion.
	l.Run()
	if count != 10 {
		t.Errorf("after Run count = %d", count)
	}
}

func TestRunUntilUnsatisfied(t *testing.T) {
	var l Loop
	l.After(time.Millisecond, func() {})
	if l.RunUntil(func() bool { return false }) {
		t.Error("RunUntil reported satisfied")
	}
}

func TestPaperCostModel(t *testing.T) {
	cm := Paper()
	if cm.ProcessObject != 8*time.Millisecond || cm.AddResult != 20*time.Millisecond {
		t.Errorf("per-object constants wrong: %+v", cm)
	}
	total := cm.SendMsg + cm.RecvMsg + cm.Latency
	if total != 50*time.Millisecond {
		t.Errorf("remote message total = %v, want the paper's 50ms", total)
	}
}
