package sim

import (
	"strings"
	"testing"
	"time"
)

func TestTraceRenderSortsByTimeThenObservationOrder(t *testing.T) {
	tr := &Trace{Spec: validSpec()}
	tr.Record(20*time.Millisecond, "second")
	tr.Record(10*time.Millisecond, "first")
	tr.Record(20*time.Millisecond, "third") // same instant, observed later
	b, err := tr.Render()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(b), "\n"), "\n")
	if lines[0] != "# hfsim trace v1" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "scenario {") {
		t.Errorf("spec line = %q", lines[1])
	}
	want := []string{"ev 10000 first", "ev 20000 second", "ev 20000 third"}
	if len(lines) != 2+len(want) {
		t.Fatalf("rendered %d lines, want %d", len(lines), 2+len(want))
	}
	for i, w := range want {
		if lines[2+i] != w {
			t.Errorf("event line %d = %q, want %q", i, lines[2+i], w)
		}
	}
}

func TestParseTraceRoundTrip(t *testing.T) {
	tr := &Trace{Spec: validSpec()}
	tr.Record(0, "submit q=0")
	tr.Record(5*time.Millisecond, "complete q=0 n=3")
	b, err := tr.Render()
	if err != nil {
		t.Fatal(err)
	}
	spec, events, err := ParseTrace(b)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := MarshalSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	ob, err := MarshalSpec(tr.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if string(sb) != string(ob) {
		t.Errorf("embedded spec drifted through the round trip")
	}
	if len(events) != 2 || events[0] != "ev 0 submit q=0" || events[1] != "ev 5000 complete q=0 n=3" {
		t.Errorf("events = %q", events)
	}
}

func TestParseTraceRejectsMalformedInput(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  string
	}{
		{"empty", "", "header"},
		{"wrong header", "# other format\n", "header"},
		{"missing scenario", "# hfsim trace v1\nev 0 x\n", "scenario"},
		{"bad spec json", "# hfsim trace v1\nscenario {broken\n", "invalid character"},
		{"invalid spec", `# hfsim trace v1` + "\n" + `scenario {"name":"x","sites":0}` + "\n", "sites"},
		{"stray line", "# hfsim trace v1\nscenario " + specJSON(t) + "\nnot an event\n", "malformed"},
	}
	for _, tc := range cases {
		_, _, err := ParseTrace([]byte(tc.input))
		if err == nil {
			t.Errorf("%s: ParseTrace accepted it", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestParseTraceSkipsBlankLines(t *testing.T) {
	in := "# hfsim trace v1\nscenario " + specJSON(t) + "\n\nev 0 x\n\n"
	_, events, err := ParseTrace([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0] != "ev 0 x" {
		t.Errorf("events = %q", events)
	}
}

func specJSON(t *testing.T) string {
	t.Helper()
	b, err := MarshalSpec(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestDiffTraces(t *testing.T) {
	a := []byte("# h\nev 0 x\nev 1 y\n")
	if d := DiffTraces(a, a); d != "" {
		t.Errorf("identical traces diff: %s", d)
	}
	b := []byte("# h\nev 0 x\nev 1 z\n")
	d := DiffTraces(a, b)
	if !strings.Contains(d, "line 3") || !strings.Contains(d, "ev 1 y") || !strings.Contains(d, "ev 1 z") {
		t.Errorf("diff does not point at the divergence: %q", d)
	}
	c := []byte("# h\nev 0 x\nev 1 y\nev 2 w\n")
	if d := DiffTraces(a, c); !strings.Contains(d, "length differs") {
		t.Errorf("extra-line diff = %q", d)
	}
}
