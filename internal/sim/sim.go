// Package sim provides a deterministic discrete-event simulator used to
// reproduce the paper's timed experiments on any host.
//
// The paper's prototype ran on IBM PC/RTs over an Ethernet; its evaluation is
// driven entirely by a handful of measured cost constants (section 5): ~8 ms
// to process one object, ~20 ms to add an object to a result set, ~50 ms per
// remote dereference message, and ~50 ms per remote result message. The
// simulator models each site as a serial CPU and the network as point-to-
// point links with latency, charging exactly those constants (see CostModel),
// which preserves the tradeoffs the evaluation studies — parallelism vs.
// message overhead vs. transit delay — while keeping runs deterministic.
package sim

import (
	"container/heap"
	"time"
)

// Loop is a discrete-event loop with a virtual clock. The zero value is
// ready to use. Loop is not safe for concurrent use: everything runs on the
// caller's goroutine inside Run.
type Loop struct {
	now    time.Duration
	seq    uint64
	events eventHeap
}

type event struct {
	at  time.Duration
	seq uint64 // FIFO tie-break for determinism
	run func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Now returns the current virtual time.
func (l *Loop) Now() time.Duration { return l.now }

// Peek returns the virtual time of the next scheduled event without running
// it. ok is false when no events remain.
func (l *Loop) Peek() (at time.Duration, ok bool) {
	if l.events.Len() == 0 {
		return 0, false
	}
	return l.events[0].at, true
}

// Step pops and runs the single earliest event, advancing the clock to its
// timestamp. It reports whether an event ran. Run and RunUntil are loops over
// Step; external drivers (scenario runners, debuggers) can interleave their
// own bookkeeping between events at exact virtual times.
func (l *Loop) Step() bool {
	if l.events.Len() == 0 {
		return false
	}
	e := heap.Pop(&l.events).(event)
	l.now = e.at
	e.run()
	return true
}

// At schedules f to run at absolute virtual time t (clamped to now).
func (l *Loop) At(t time.Duration, f func()) {
	if t < l.now {
		t = l.now
	}
	l.seq++
	heap.Push(&l.events, event{at: t, seq: l.seq, run: f})
}

// After schedules f to run d after the current virtual time.
func (l *Loop) After(d time.Duration, f func()) { l.At(l.now+d, f) }

// Run executes events in time order until none remain, returning the final
// virtual time.
func (l *Loop) Run() time.Duration {
	for l.Step() {
	}
	return l.now
}

// RunUntil executes events until the predicate holds (checked after each
// event) or no events remain. It reports whether the predicate held.
func (l *Loop) RunUntil(pred func() bool) bool {
	if pred() {
		return true
	}
	for l.Step() {
		if pred() {
			return true
		}
	}
	return pred()
}

// RunUntilTime executes every event scheduled strictly before t, then
// advances the clock to t (events scheduled exactly at t stay pending, so a
// caller injecting work at t goes first among ties by FIFO seq order).
func (l *Loop) RunUntilTime(t time.Duration) {
	for {
		at, ok := l.Peek()
		if !ok || at >= t {
			break
		}
		l.Step()
	}
	if t > l.now {
		l.now = t
	}
}

// Pending returns the number of scheduled events.
func (l *Loop) Pending() int { return l.events.Len() }
