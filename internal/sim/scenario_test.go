package sim

import (
	"strings"
	"testing"
	"time"
)

func validSpec() *Scenario {
	return &Scenario{
		Name:     "t",
		Seed:     1,
		Sites:    4,
		Topology: Topology{Kind: "uniform"},
		Workload: Workload{
			Kind: "regions", Objects: 400, RegionSize: 50,
			Count: 2, Arrival: "batch", Spread: "roundrobin",
		},
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Scenario)
		want string
	}{
		{"missing name", func(s *Scenario) { s.Name = "" }, "missing name"},
		{"zero sites", func(s *Scenario) { s.Sites = 0 }, "sites"},
		{"bad topology", func(s *Scenario) { s.Topology.Kind = "mesh" }, "topology"},
		{"negative scale", func(s *Scenario) { s.Topology.ScalePct = -1 }, "negative latency"},
		{"bad workload", func(s *Scenario) { s.Workload.Kind = "zipf" }, "workload"},
		{"zero objects", func(s *Scenario) { s.Workload.Objects = 0 }, "objects"},
		{"bad arrival", func(s *Scenario) { s.Workload.Arrival = "burst" }, "arrival"},
		{"bad spread", func(s *Scenario) { s.Workload.Spread = "zip" }, "spread"},
		{"bad placement", func(s *Scenario) { s.Workload.Placement = "edge" }, "placement"},
		{"regions without size", func(s *Scenario) { s.Workload.RegionSize = 0 }, "region_size"},
		{"hot without hot_sites", func(s *Scenario) { s.Workload.Placement = "hot" }, "hot_sites"},
		{"no queries", func(s *Scenario) { s.Workload.Count = 0 }, "no queries"},
		{"poisson without rate", func(s *Scenario) { s.Workload.Arrival = "poisson" }, "rate_qps"},
		{"query origin out of range", func(s *Scenario) {
			s.Workload.Queries = []Query{{Origin: 9, Body: "x"}}
		}, "origin"},
		{"query negative time", func(s *Scenario) {
			s.Workload.Queries = []Query{{Origin: 1, Body: "x", AtUS: -1}}
		}, "at_us"},
		{"query empty body", func(s *Scenario) {
			s.Workload.Queries = []Query{{Origin: 1}}
		}, "body"},
		{"bad failure kind", func(s *Scenario) {
			s.Failures = []Failure{{Kind: "flood"}}
		}, "unknown kind"},
		{"failure negative time", func(s *Scenario) {
			s.Failures = []Failure{{Kind: "heal", AtUS: -5}}
		}, "negative timestamp"},
		{"failure negative detect", func(s *Scenario) {
			s.Failures = []Failure{{Kind: "crash", Site: 1, DetectUS: -1}}
		}, "negative timestamp"},
		{"crash site out of range", func(s *Scenario) {
			s.Failures = []Failure{{Kind: "crash", Site: 5}}
		}, "out of range"},
		{"partition without group", func(s *Scenario) {
			s.Failures = []Failure{{Kind: "partition"}}
		}, "group a"},
		{"partition site out of range", func(s *Scenario) {
			s.Failures = []Failure{{Kind: "partition", A: []int{1, 7}}}
		}, "out of range"},
	}
	if err := validSpec().Validate(); err != nil {
		t.Fatalf("base spec invalid: %v", err)
	}
	for _, tc := range cases {
		s := validSpec()
		tc.mut(s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted the spec", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// matrix compiles a topology over n sites with default hop latency (10ms).
func matrix(t *testing.T, n int, topo Topology, seed int64) [][]time.Duration {
	t.Helper()
	s := validSpec()
	s.Sites = n
	s.Seed = seed
	s.Topology = topo
	m, err := s.LatencyMatrix(10 * time.Millisecond)
	if err != nil {
		t.Fatalf("%s: %v", topo.Kind, err)
	}
	return m
}

func TestLatencyMatrixShapes(t *testing.T) {
	hop := 10 * time.Millisecond

	// Uniform: every pair one hop.
	m := matrix(t, 5, Topology{Kind: "uniform"}, 1)
	for u := 1; u <= 5; u++ {
		for v := 1; v <= 5; v++ {
			want := hop
			if u == v {
				want = 0
			}
			if m[u][v] != want {
				t.Errorf("uniform m[%d][%d] = %v, want %v", u, v, m[u][v], want)
			}
		}
	}

	// Star: hub one hop from everyone, leaves two hops apart.
	m = matrix(t, 5, Topology{Kind: "star"}, 1)
	if m[1][4] != hop || m[4][1] != hop {
		t.Errorf("star hub link = %v/%v, want %v", m[1][4], m[4][1], hop)
	}
	if m[2][5] != 2*hop {
		t.Errorf("star leaf-leaf = %v, want %v", m[2][5], 2*hop)
	}

	// Ring: shortest way around.
	m = matrix(t, 6, Topology{Kind: "ring"}, 1)
	if m[1][2] != hop || m[1][4] != 3*hop || m[1][6] != hop {
		t.Errorf("ring distances from 1: %v %v %v, want 1/3/1 hops", m[1][2], m[1][4], m[1][6])
	}

	// Tree (binary): root 1, children 2 and 3; 4 hangs off 2.
	m = matrix(t, 7, Topology{Kind: "tree", Degree: 2}, 1)
	if m[1][2] != hop || m[2][3] != 2*hop || m[1][4] != 2*hop || m[4][6] != 4*hop {
		t.Errorf("tree distances: %v %v %v %v, want 1/2/2/4 hops", m[1][2], m[2][3], m[1][4], m[4][6])
	}
}

func TestLatencyMatrixScaleAndHopOverride(t *testing.T) {
	m := matrix(t, 4, Topology{Kind: "uniform", HopLatencyUS: 2000, ScalePct: 150}, 1)
	if want := 3 * time.Millisecond; m[1][2] != want {
		t.Errorf("scaled hop = %v, want %v", m[1][2], want)
	}
}

func TestLatencyMatrixSymmetricAndConnected(t *testing.T) {
	topos := []Topology{
		{Kind: "uniform"}, {Kind: "star"}, {Kind: "ring"},
		{Kind: "tree", Degree: 3}, {Kind: "hypergraph", Degree: 4, Edges: 9},
		{Kind: "hypergraph"}, {Kind: "p2p", Degree: 2}, {Kind: "p2p"},
	}
	for _, topo := range topos {
		for _, seed := range []int64{1, 42, 404} {
			m := matrix(t, 24, topo, seed)
			for u := 1; u <= 24; u++ {
				for v := u + 1; v <= 24; v++ {
					if m[u][v] != m[v][u] {
						t.Fatalf("%s seed %d: asymmetric m[%d][%d]=%v m[%d][%d]=%v",
							topo.Kind, seed, u, v, m[u][v], v, u, m[v][u])
					}
					if m[u][v] <= 0 {
						t.Fatalf("%s seed %d: sites %d,%d not connected", topo.Kind, seed, u, v)
					}
				}
			}
		}
	}
}

func TestLatencyMatrixReportsDisconnection(t *testing.T) {
	// One 3-site hyperedge (plus its one random chord) cannot span 10 sites.
	s := validSpec()
	s.Sites = 10
	s.Topology = Topology{Kind: "hypergraph", Degree: 3, Edges: 1}
	if _, err := s.LatencyMatrix(10 * time.Millisecond); err == nil {
		t.Fatal("LatencyMatrix accepted a disconnected overlay")
	} else if !strings.Contains(err.Error(), "disconnect") {
		t.Errorf("error %q does not mention disconnection", err)
	}
}

func TestHomeSiteMapping(t *testing.T) {
	w := Workload{}
	if got := w.HomeSite(7, 4); got != 4 {
		t.Errorf("spread HomeSite(7, 4) = %d, want 4", got)
	}
	hot := Workload{Placement: "hot", HotSites: 2}
	for region := 0; region < 8; region++ {
		if got := hot.HomeSite(region, 16); got != 1+region%2 {
			t.Errorf("hot HomeSite(%d) = %d, want %d", region, got, 1+region%2)
		}
	}
	// HotSites above the cluster size clamps.
	wide := Workload{Placement: "hot", HotSites: 9}
	if got := wide.HomeSite(5, 3); got < 1 || got > 3 {
		t.Errorf("clamped hot HomeSite = %d, out of range", got)
	}
}

func TestRegionsCount(t *testing.T) {
	w := Workload{Kind: "regions", Objects: 1001, RegionSize: 100}
	if got := w.Regions(); got != 11 {
		t.Errorf("Regions() = %d, want 11", got)
	}
	if got := (Workload{Kind: "paper", Objects: 90}).Regions(); got != 0 {
		t.Errorf("paper Regions() = %d, want 0", got)
	}
}

func TestGenQueriesDeterministicAndScheduled(t *testing.T) {
	s := validSpec()
	s.Workload.Count = 16
	s.Workload.Arrival = "poisson"
	s.Workload.RateQPS = 50
	q1, err := s.GenQueries()
	if err != nil {
		t.Fatal(err)
	}
	q2, err := s.GenQueries()
	if err != nil {
		t.Fatal(err)
	}
	if len(q1) != 16 {
		t.Fatalf("generated %d queries, want 16", len(q1))
	}
	for i := range q1 {
		if q1[i] != q2[i] {
			t.Fatalf("query %d differs between runs: %+v vs %+v", i, q1[i], q2[i])
		}
		if i > 0 && q1[i].AtUS < q1[i-1].AtUS {
			t.Errorf("poisson arrivals not monotone at %d", i)
		}
		if q1[i].Origin < 1 || q1[i].Origin > s.Sites {
			t.Errorf("query %d origin %d out of range", i, q1[i].Origin)
		}
		if q1[i].Region < 0 || q1[i].Region >= s.Workload.Regions() {
			t.Errorf("query %d region %d out of range", i, q1[i].Region)
		}
		if q1[i].Body == "" {
			t.Errorf("query %d has no body", i)
		}
	}
}

func TestGenQueriesArrivalKinds(t *testing.T) {
	s := validSpec()
	s.Workload.Count = 8
	s.Workload.Arrival = "batch"
	qs, err := s.GenQueries()
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		if q.AtUS != 0 {
			t.Errorf("batch query %d at %d, want 0", i, q.AtUS)
		}
	}

	s.Workload.Arrival = "flash"
	s.Workload.RateQPS = 10
	s.Workload.FlashAtUS = 700_000
	qs, err = s.GenQueries()
	if err != nil {
		t.Fatal(err)
	}
	flash := 0
	for _, q := range qs {
		if q.AtUS == 700_000 {
			flash++
		}
	}
	// A quarter trickle in; the remaining three quarters land together.
	if flash != 6 {
		t.Errorf("%d queries at the flash instant, want 6 of 8", flash)
	}
}

func TestGenQueriesExplicitSchedulePassesThrough(t *testing.T) {
	s := validSpec()
	want := []Query{{AtUS: 5, Origin: 2, Body: "b", Region: 3}}
	s.Workload.Queries = want
	got, err := s.GenQueries()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != want[0] {
		t.Errorf("explicit schedule altered: %+v", got)
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	s := validSpec()
	s.Comment = "round trip"
	s.Topology = Topology{Kind: "hypergraph", Degree: 4, Edges: 9, ScalePct: 150, HopLatencyUS: 2500}
	s.Workload.Placement = "hot"
	s.Workload.HotSites = 2
	s.Failures = []Failure{
		{AtUS: 100, Kind: "partition", A: []int{1, 2}},
		{AtUS: 900, Kind: "heal"},
		{AtUS: 50, Kind: "crash", Site: 3, DetectUS: 200},
	}
	s.Exec = Exec{Workers: 4, DerefBatch: 8, PlanCache: 4, Index: true,
		FairQuantum: 2, MaxInflight: 8, AdmissionQueue: 4}
	s.TraceMessages = true

	b, err := MarshalSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "\n") {
		t.Error("MarshalSpec output is not a single line (traces embed it on one)")
	}
	got, err := UnmarshalSpec(b)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := MarshalSpec(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Errorf("round trip not stable:\n  %s\n  %s", b, b2)
	}
}

func TestUnmarshalSpecValidates(t *testing.T) {
	if _, err := UnmarshalSpec([]byte(`{"name":"x","sites":0}`)); err == nil {
		t.Error("UnmarshalSpec accepted an invalid spec")
	}
	if _, err := UnmarshalSpec([]byte(`{not json`)); err == nil {
		t.Error("UnmarshalSpec accepted malformed JSON")
	}
}
