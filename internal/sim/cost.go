package sim

import "time"

// CostModel holds the virtual-time charges for query processing, calibrated
// to the constants the paper measured on its PC/RT prototype (section 5).
//
// The ~50 ms the paper attributes to a remote dereference covers "construct-
// ing the message, system calls for sending and receiving, and transmission
// delay"; we split it into sender CPU + wire latency + receiver CPU so that
// sender and receiver serialization are modeled separately. Result messages
// get the same treatment plus a per-item charge: installing a returned
// object id into the originator's result set costs the same ~20 ms as any
// other result-set add, paid at the originator.
type CostModel struct {
	// ProcessObject is charged at a site's CPU for each object taken through
	// the filters (the paper's ~8 ms).
	ProcessObject time.Duration
	// AddResult is charged when an object joins a site's local result set
	// (the paper's ~20 ms).
	AddResult time.Duration
	// SendMsg is the sender-CPU share of any inter-site message.
	SendMsg time.Duration
	// RecvMsg is the receiver-CPU share of any inter-site message.
	RecvMsg time.Duration
	// Latency is the wire time of any inter-site message.
	Latency time.Duration
	// ResultItem is the per-id installation cost at the originator when a
	// result message arrives: the ordinary ~20 ms result-set add plus
	// unmarshalling. This is what makes "sending results expensive" for
	// low-selectivity queries (paper section 5).
	ResultItem time.Duration
	// DerefItem is the per-id receiver charge for each object id beyond the
	// first in a batched Deref message: unmarshalling and working-set
	// insertion, without the per-message overhead the batch amortizes. A
	// single-id Deref costs exactly RecvMsg, matching the unbatched protocol.
	DerefItem time.Duration
	// CtlSend/CtlRecv are the CPU shares for tiny control messages
	// (termination credits, acknowledgements), much smaller than full
	// dereference processing.
	CtlSend time.Duration
	CtlRecv time.Duration
	// Compile is charged at a site's CPU each time a query body is lexed,
	// parsed, and lowered to a physical plan — the per-site setup cost the
	// paper notes is "only required once at each involved site". With the
	// plan cache enabled, repeated bodies pay PlanCacheHit instead.
	Compile time.Duration
	// PlanCacheHit is charged when a site reuses a cached physical plan for
	// a query body it compiled before: a hash lookup plus verification,
	// orders of magnitude below Compile.
	PlanCacheHit time.Duration
	// ResultBatch caps the number of ids per result message; a drain with
	// more local results sends several messages. Zero means unbounded.
	ResultBatch int
}

// Paper is the cost model calibrated to the constants of section 5:
// 8 ms/object, 20 ms/result-set add, and ~50 ms per remote message
// (20 ms sender CPU + 10 ms wire + 20 ms receiver CPU).
func Paper() CostModel {
	return CostModel{
		ProcessObject: 8 * time.Millisecond,
		AddResult:     20 * time.Millisecond,
		SendMsg:       20 * time.Millisecond,
		RecvMsg:       20 * time.Millisecond,
		Latency:       10 * time.Millisecond,
		ResultItem:    26 * time.Millisecond,
		DerefItem:     2 * time.Millisecond,
		CtlSend:       5 * time.Millisecond,
		CtlRecv:       5 * time.Millisecond,
		Compile:       1 * time.Millisecond,
		PlanCacheHit:  10 * time.Microsecond,
		ResultBatch:   8,
	}
}

// Free is a zero-cost model: virtual time never advances. Useful for
// functional tests that only care about answers.
func Free() CostModel { return CostModel{} }
