package sim

import (
	"testing"
	"time"
)

// The decomposed step primitives (Peek / Step / RunUntilTime / Pending) let
// the scenario runner interleave failure injection with event draining at
// exact virtual timestamps. These tests pin their contracts directly.

func TestPeekReportsNextEventWithoutRunning(t *testing.T) {
	var l Loop
	if _, ok := l.Peek(); ok {
		t.Fatal("Peek on an empty loop reported an event")
	}
	fired := false
	l.At(40*time.Millisecond, func() { fired = true })
	l.At(15*time.Millisecond, func() { fired = true })
	at, ok := l.Peek()
	if !ok || at != 15*time.Millisecond {
		t.Errorf("Peek = (%v, %v), want (15ms, true)", at, ok)
	}
	if fired {
		t.Error("Peek ran a handler")
	}
	if l.Now() != 0 {
		t.Errorf("Peek advanced the clock to %v", l.Now())
	}
}

func TestStepRunsExactlyOneEvent(t *testing.T) {
	var l Loop
	var got []int
	l.At(10*time.Millisecond, func() { got = append(got, 1) })
	l.At(20*time.Millisecond, func() { got = append(got, 2) })
	if !l.Step() {
		t.Fatal("Step on a non-empty loop returned false")
	}
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("after one Step got %v, want [1]", got)
	}
	if l.Now() != 10*time.Millisecond {
		t.Errorf("clock = %v after first Step, want 10ms", l.Now())
	}
	if l.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", l.Pending())
	}
	if !l.Step() {
		t.Fatal("second Step returned false")
	}
	if l.Step() {
		t.Error("Step on a drained loop returned true")
	}
	if len(got) != 2 || got[1] != 2 {
		t.Errorf("events ran out of order: %v", got)
	}
}

func TestRunUntilTimeStopsOnTheBoundary(t *testing.T) {
	var l Loop
	var got []int
	for _, ms := range []int{10, 20, 30, 40} {
		ms := ms
		l.At(time.Duration(ms)*time.Millisecond, func() { got = append(got, ms) })
	}
	l.RunUntilTime(25 * time.Millisecond)
	if len(got) != 2 || got[0] != 10 || got[1] != 20 {
		t.Errorf("RunUntilTime(25ms) ran %v, want [10 20]", got)
	}
	// The clock lands on the boundary itself, so an injected event at the
	// boundary is next in line, ahead of the 30ms event.
	if l.Now() != 25*time.Millisecond {
		t.Errorf("clock = %v, want 25ms", l.Now())
	}
	l.At(25*time.Millisecond, func() { got = append(got, 25) })
	l.Run()
	want := []int{10, 20, 25, 30, 40}
	if len(got) != len(want) {
		t.Fatalf("final order %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("final order %v, want %v", got, want)
		}
	}
}

func TestRunUntilTimeExcludesEventsAtTheBoundary(t *testing.T) {
	// Events scheduled exactly at t stay pending: the failure injector calls
	// RunUntilTime(at) and then acts *at* that timestamp, before any
	// same-time deliveries drain.
	var l Loop
	ran := false
	l.At(25*time.Millisecond, func() { ran = true })
	l.RunUntilTime(25 * time.Millisecond)
	if ran {
		t.Error("event exactly at the boundary ran; it must stay pending")
	}
	if l.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", l.Pending())
	}
	if l.Now() != 25*time.Millisecond {
		t.Errorf("clock = %v, want 25ms", l.Now())
	}
	l.Run()
	if !ran {
		t.Error("boundary event never ran")
	}
}

func TestStepAndRunCompose(t *testing.T) {
	// Draining a prefix with Step and the rest with Run must equal one Run:
	// the runner relies on this to inject aborts between drains.
	var a, b []int
	mk := func(out *[]int) *Loop {
		var l Loop
		for _, ms := range []int{5, 10, 15, 20} {
			ms := ms
			l.At(time.Duration(ms)*time.Millisecond, func() { *out = append(*out, ms) })
		}
		return &l
	}
	l1 := mk(&a)
	l1.Run()
	l2 := mk(&b)
	l2.Step()
	l2.Step()
	l2.Run()
	if len(a) != len(b) {
		t.Fatalf("Step+Run ran %v, Run ran %v", b, a)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Step+Run ran %v, Run ran %v", b, a)
		}
	}
}
