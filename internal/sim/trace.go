package sim

import (
	"bufio"
	"bytes"
	"fmt"
	"sort"
	"strings"
	"time"
)

// TraceEvent is one simulation-visible event at a virtual time. Text is the
// pre-rendered, deterministic payload ("complete q=3 n=17 digest=…"); the
// renderer prefixes the timestamp. Seq preserves observation order among
// events that share a timestamp.
type TraceEvent struct {
	At   time.Duration
	Seq  int
	Text string
}

// Trace is a recorded scenario run: the spec that produced it plus every
// event. A run is replayed by re-simulating the embedded spec and comparing
// rendered traces byte for byte.
type Trace struct {
	Spec   *Scenario
	Events []TraceEvent
}

// Record appends an event, stamping its observation order.
func (t *Trace) Record(at time.Duration, text string) {
	t.Events = append(t.Events, TraceEvent{At: at, Seq: len(t.Events), Text: text})
}

const traceHeader = "# hfsim trace v1"

// Render produces the canonical byte form: a header, the embedded spec JSON,
// then one "ev <at_us> <text>" line per event sorted by (time, observation
// order). Two runs of the same scenario are byte-identical iff their traces
// render identically.
func (t *Trace) Render() ([]byte, error) {
	spec, err := MarshalSpec(t.Spec)
	if err != nil {
		return nil, err
	}
	evs := append([]TraceEvent(nil), t.Events...)
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].At != evs[j].At {
			return evs[i].At < evs[j].At
		}
		return evs[i].Seq < evs[j].Seq
	})
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s\nscenario %s\n", traceHeader, spec)
	for _, ev := range evs {
		fmt.Fprintf(&b, "ev %d %s\n", ev.At.Microseconds(), ev.Text)
	}
	return b.Bytes(), nil
}

// ParseTrace reads a rendered trace back: the embedded spec and the raw
// event lines (without re-interpreting them — replay compares rendered bytes,
// not parsed structures).
func ParseTrace(b []byte) (*Scenario, []string, error) {
	sc := bufio.NewScanner(bytes.NewReader(b))
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() || sc.Text() != traceHeader {
		return nil, nil, fmt.Errorf("trace: missing %q header", traceHeader)
	}
	if !sc.Scan() || !strings.HasPrefix(sc.Text(), "scenario ") {
		return nil, nil, fmt.Errorf("trace: missing scenario line")
	}
	spec, err := UnmarshalSpec([]byte(strings.TrimPrefix(sc.Text(), "scenario ")))
	if err != nil {
		return nil, nil, err
	}
	var events []string
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if !strings.HasPrefix(line, "ev ") {
			return nil, nil, fmt.Errorf("trace: malformed line %q", line)
		}
		events = append(events, line)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return spec, events, nil
}

// DiffTraces compares two rendered traces and describes the first divergence
// ("" when identical). It is the golden-file and replay assertion.
func DiffTraces(want, got []byte) string {
	if bytes.Equal(want, got) {
		return ""
	}
	w := strings.Split(strings.TrimRight(string(want), "\n"), "\n")
	g := strings.Split(strings.TrimRight(string(got), "\n"), "\n")
	n := len(w)
	if len(g) < n {
		n = len(g)
	}
	for i := 0; i < n; i++ {
		if w[i] != g[i] {
			return fmt.Sprintf("line %d:\n  want: %s\n  got:  %s", i+1, w[i], g[i])
		}
	}
	return fmt.Sprintf("length differs: want %d lines, got %d", len(w), len(g))
}
