package hyperfile

import (
	"strings"
	"testing"
)

func TestPreparedQueryBindings(t *testing.T) {
	db := Open()
	root, _ := buildLibrary(t, db)
	pq, err := db.Prepare(
		`S (Pointer, "Called Routine", ?X) ^^X (String, "Title", ->title) -> T`)
	if err != nil {
		t.Fatal(err)
	}
	var titles []string
	var resultCount int
	pq.OnFetch("title", func(v Value, from ID) {
		titles = append(titles, v.Str)
	}).OnResult(func(ID) { resultCount++ })

	res, err := pq.Run([]ID{root})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != resultCount {
		t.Errorf("OnResult fired %d times for %d results", resultCount, len(res))
	}
	joined := strings.Join(titles, ";")
	if !strings.Contains(joined, "Main Program") || !strings.Contains(joined, "Quicksort") {
		t.Errorf("titles = %v", titles)
	}

	// Re-running the prepared query works and handlers persist.
	titles = nil
	if _, err := pq.Run([]ID{root}); err != nil {
		t.Fatal(err)
	}
	if len(titles) == 0 {
		t.Error("handlers did not fire on second run")
	}
}

func TestPreparedQueryUnknownBinding(t *testing.T) {
	db := Open()
	root, _ := buildLibrary(t, db)
	pq, err := db.Prepare(`S (String, "Title", ->title) -> T`)
	if err != nil {
		t.Fatal(err)
	}
	pq.OnFetch("nope", func(Value, ID) {})
	if _, err := pq.Run([]ID{root}); err == nil {
		t.Error("expected unknown-binding error")
	}
}

func TestPreparedQueryParseErrors(t *testing.T) {
	db := Open()
	if _, err := db.Prepare("garbage"); err == nil {
		t.Error("expected parse error")
	}
	if _, err := db.Prepare("S ^X -> T"); err == nil {
		t.Error("expected compile error")
	}
}

func TestPreparedParallelMatchesSerial(t *testing.T) {
	db := Open()
	root, _ := buildLibrary(t, db)
	q := `S [ (Pointer, "Called Routine", ?X) ^^X ]** (String, "Author", "Joe Programmer") -> T`
	pqSerial, err := db.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := pqSerial.Run([]ID{root})
	if err != nil {
		t.Fatal(err)
	}
	pqPar, err := db.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	par, err := pqPar.Parallel(4).Run([]ID{root})
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Equal(par) {
		t.Errorf("parallel %v != serial %v", par, serial)
	}
}

func TestExecParallelFacade(t *testing.T) {
	db := Open()
	root, _ := buildLibrary(t, db)
	res, _, err := db.ExecParallel(
		`S (Pointer, "Called Routine", ?X) ^^X (String, "Author", "Joe Programmer") -> T`,
		4, []ID{root})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Errorf("results = %v", res)
	}
	if _, _, err := db.ExecParallel("bad", 2, nil); err == nil {
		t.Error("expected parse error")
	}
	if _, _, err := db.ExecParallel("S ^X -> T", 2, nil); err == nil {
		t.Error("expected compile error")
	}
}

func TestExecTraceAndExplain(t *testing.T) {
	db := Open()
	root, _ := buildLibrary(t, db)
	var events int
	res, _, err := db.ExecTrace(
		`S (Pointer, "Called Routine", ?X) ^^X (String, "Author", "Joe Programmer") -> T`,
		[]ID{root}, func(TraceEvent) { events++ })
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || events == 0 {
		t.Errorf("results = %v, events = %d", res, events)
	}
	if _, _, err := db.ExecTrace("bad", nil, nil); err == nil {
		t.Error("expected parse error")
	}
	if _, _, err := db.ExecTrace("S ^X -> T", nil, nil); err == nil {
		t.Error("expected compile error")
	}

	plan, err := Explain(`S [ (p, "Ref", ?X) ^X ]** -> T`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "consuming dereference") {
		t.Errorf("plan = %q", plan)
	}
	if _, err := Explain("nope"); err == nil {
		t.Error("expected parse error")
	}
	if _, err := Explain("S ^Y -> T"); err == nil {
		t.Error("expected compile error")
	}
}

func TestAddBackPointers(t *testing.T) {
	db := Open()
	callee := db.NewObject().Add("String", String("Title"), String("Callee"))
	caller1 := db.NewObject().
		Add("Pointer", String("Called Routine"), PointerTo(callee.ID))
	caller2 := db.NewObject().
		Add("Pointer", String("Called Routine"), PointerTo(callee.ID))
	for _, o := range []*Object{callee, caller1, caller2} {
		if err := db.Put(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.AddBackPointers("Called Routine", "Called By"); err != nil {
		t.Fatal(err)
	}
	// Backward chaining now expressible as a forward query.
	res, _, _, err := db.Exec(`S (Pointer, "Called By", ?X) ^X (?, ?, ?) -> T`,
		[]ID{callee.ID})
	if err != nil {
		t.Fatal(err)
	}
	want := NewIDSet(caller1.ID, caller2.ID)
	if !res.Equal(want) {
		t.Errorf("callers = %v, want %v", res, want)
	}
	// Idempotent: running again does not duplicate back pointers.
	if err := db.AddBackPointers("Called Routine", "Called By"); err != nil {
		t.Fatal(err)
	}
	o, _ := db.Get(callee.ID)
	if got := len(o.Pointers("Pointer", "Called By")); got != 2 {
		t.Errorf("back pointers = %d, want 2", got)
	}
}

func TestAddBackPointersPreservesSpilledData(t *testing.T) {
	db := Open()
	big := make([]byte, 100000)
	big[42] = 7
	target := db.NewObject().Add("Text", String("body"), Bytes(big))
	src := db.NewObject().Add("Pointer", String("Ref"), PointerTo(target.ID))
	for _, o := range []*Object{target, src} {
		if err := db.Put(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.AddBackPointers("Ref", "RefBy"); err != nil {
		t.Fatal(err)
	}
	v, err := db.FetchData(target.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Bytes) != 100000 || v.Bytes[42] != 7 {
		t.Errorf("spilled payload lost by back-pointer rewrite")
	}
}
