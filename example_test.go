package hyperfile_test

import (
	"fmt"
	"log"
	"time"

	"hyperfile"
)

// ExampleDB_Exec runs the paper's section-2 query: called routines written
// by a given author, found in one request.
func ExampleDB_Exec() {
	db := hyperfile.Open()
	callee := db.NewObject().
		Add("String", hyperfile.String("Title"), hyperfile.String("Quicksort")).
		Add("String", hyperfile.String("Author"), hyperfile.String("Joe Programmer"))
	main := db.NewObject().
		Add("String", hyperfile.String("Author"), hyperfile.String("Joe Programmer")).
		Add("Pointer", hyperfile.String("Called Routine"), hyperfile.PointerTo(callee.ID))
	for _, o := range []*hyperfile.Object{callee, main} {
		if err := db.Put(o); err != nil {
			log.Fatal(err)
		}
	}
	res, _, _, err := db.Exec(
		`S (Pointer, "Called Routine", ?X) ^^X (String, "Author", "Joe Programmer") -> T`,
		[]hyperfile.ID{main.ID})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(res), "modules")
	// Output: 2 modules
}

// ExampleDB_Prepare shows the embedded-language binding: "->title" fetches
// flow into a Go callback, like the paper's embedded-C sketch.
func ExampleDB_Prepare() {
	db := hyperfile.Open()
	doc := db.NewObject().
		Add("String", hyperfile.String("Title"), hyperfile.String("HyperFile")).
		Add("String", hyperfile.String("Author"), hyperfile.String("Chris Clifton"))
	if err := db.Put(doc); err != nil {
		log.Fatal(err)
	}
	pq, err := db.Prepare(
		`S (String, "Author", "Chris Clifton") (String, "Title", ->title) -> T`)
	if err != nil {
		log.Fatal(err)
	}
	n := 1
	pq.OnFetch("title", func(v hyperfile.Value, _ hyperfile.ID) {
		fmt.Printf("Title %d: %s\n", n, v.Str)
		n++
	})
	if _, err := pq.Run([]hyperfile.ID{doc.ID}); err != nil {
		log.Fatal(err)
	}
	// Output: Title 1: HyperFile
}

// ExampleNewCluster runs a distributed query over an in-process two-site
// service: the query follows the remote pointer, the document stays put.
func ExampleNewCluster() {
	c := hyperfile.NewCluster(2, hyperfile.Options{})
	defer c.Close()
	remote := c.Store(2).NewObject().
		Add("keyword", hyperfile.Keyword("distributed"), hyperfile.Value{})
	local := c.Store(1).NewObject().
		Add("Pointer", hyperfile.String("Reference"), hyperfile.PointerTo(remote.ID))
	if err := c.Put(2, remote); err != nil {
		log.Fatal(err)
	}
	if err := c.Put(1, local); err != nil {
		log.Fatal(err)
	}
	res, err := c.Exec(1,
		`S (Pointer, "Reference", ?X) ^X (keyword, "distributed", ?) -> T`,
		[]hyperfile.ID{local.ID}, 5*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(res.IDs), "result from site", res.IDs[0].Birth)
	// Output: 1 result from site s2
}

// ExampleParseQuery demonstrates the concrete syntax round trip.
func ExampleParseQuery() {
	q, err := hyperfile.ParseQuery(
		`S [ (Pointer, "Reference", ?X) ^^X ]** (keyword, "Distributed", ?) -> T`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(q.Initial, "->", q.Result)
	// Output: S -> T
}
