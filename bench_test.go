package hyperfile

// One benchmark per table/figure of the paper's evaluation (E1-E9) and per
// ablation (A1-A4), each driving the deterministic experiment harness and
// reporting the headline simulated quantities as custom metrics, plus
// real-time micro-benchmarks of the core components.
//
// Regenerate the full evaluation with:
//
//	go run ./cmd/hfbench -queries 100

import (
	"fmt"
	"testing"

	"hyperfile/internal/bench"
	"hyperfile/internal/engine"
	"hyperfile/internal/index"
	"hyperfile/internal/object"
	"hyperfile/internal/query"
	"hyperfile/internal/store"
	"hyperfile/internal/wire"
	"hyperfile/internal/workload"
)

// runExperiment executes one harness experiment per iteration and reports
// selected simulated measurements (in seconds) as metrics.
func runExperiment(b *testing.B, id string, metrics ...string) {
	b.Helper()
	e, ok := bench.Get(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	cfg := bench.Default()
	cfg.Queries = 3 // keep each iteration fast; shapes are already stable
	var last *bench.Report
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := e.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.StopTimer()
	for _, m := range metrics {
		if v, ok := last.Values[m]; ok {
			b.ReportMetric(v, m)
		}
	}
}

// BenchmarkE1BaseCosts regenerates the paper's measured base costs:
// ~8 ms/object, ~20 ms/result, ~50 ms/remote dereference.
func BenchmarkE1BaseCosts(b *testing.B) {
	runExperiment(b, "E1", "per_object_ms", "per_result_ms", "per_remote_ms")
}

// BenchmarkE2SingleSite regenerates the 2.7 s single-site closure (270
// objects, ~27 results, tree or chain pointers).
func BenchmarkE2SingleSite(b *testing.B) {
	runExperiment(b, "E2", "single_Tree", "single_Chain")
}

// BenchmarkE3Chain regenerates the 15 s worst-case chain result on 3 and 9
// machines.
func BenchmarkE3Chain(b *testing.B) {
	runExperiment(b, "E3", "chain_m3", "chain_m9")
}

// BenchmarkE4Tree regenerates the 1.5 s / 1.0 s spanning-tree results.
func BenchmarkE4Tree(b *testing.B) {
	runExperiment(b, "E4", "tree_m3", "tree_m9")
}

// BenchmarkE5Figure4 regenerates Figure 4 (response time vs pointer
// locality, 3 vs 9 machines); the reported metrics are the figure's two
// endpoints per series.
func BenchmarkE5Figure4(b *testing.B) {
	runExperiment(b, "E5", "p05_m3", "p95_m3", "p05_m9", "p95_m9")
}

// BenchmarkE6Selectivity regenerates the selectivity crossover (distributed
// wins at 10% selectivity, single site wins at select-all).
func BenchmarkE6Selectivity(b *testing.B) {
	runExperiment(b, "E6", "sel10_m1", "sel10_m3", "selall_m1", "selall_m3")
}

// BenchmarkE7Scaling regenerates the dataset-size scaling observation.
func BenchmarkE7Scaling(b *testing.B) {
	runExperiment(b, "E7", "ratio")
}

// BenchmarkE8DistributedSet regenerates the distributed-result-set
// refinement measurements.
func BenchmarkE8DistributedSet(b *testing.B) {
	runExperiment(b, "E8", "ship", "refined", "followup")
}

// BenchmarkE9MessageCost regenerates the query-vs-file message cost
// comparison against the file-server baseline.
func BenchmarkE9MessageCost(b *testing.B) {
	runExperiment(b, "E9", "ratio", "deref_bytes")
}

// BenchmarkAblationMarkTable compares local mark tables against a zero-cost
// global oracle.
func BenchmarkAblationMarkTable(b *testing.B) {
	runExperiment(b, "A1", "local_time", "oracle_time", "saved_frac")
}

// BenchmarkAblationTermination compares weighted-credit and
// Dijkstra-Scholten termination detection.
func BenchmarkAblationTermination(b *testing.B) {
	runExperiment(b, "A2", "weighted_time", "ds_time", "ds_controls")
}

// BenchmarkAblationIndex compares index lookups against query traversal.
func BenchmarkAblationIndex(b *testing.B) {
	runExperiment(b, "A3", "lookup_us", "traversal_us")
}

// BenchmarkAblationWorkset compares breadth-first and depth-first working
// sets.
func BenchmarkAblationWorkset(b *testing.B) {
	runExperiment(b, "A4", "bfs_time", "dfs_time")
}

// BenchmarkAblationMultiprocessor measures the shared-memory mode of the
// paper's conclusion (wall-clock speedup; depends on host CPUs).
func BenchmarkAblationMultiprocessor(b *testing.B) {
	runExperiment(b, "A5", "w1_us", "w2_us", "w4_us")
}

// BenchmarkAblationResultBatch sweeps the result-message batch size.
func BenchmarkAblationResultBatch(b *testing.B) {
	runExperiment(b, "A6", "batch_1", "batch_8", "batch_unbounded")
}

// BenchmarkAblationLoad measures response time under concurrent query load.
func BenchmarkAblationLoad(b *testing.B) {
	runExperiment(b, "A7", "load1", "load4", "slowdown4")
}

// --- real-time component micro-benchmarks ---

// engineFixture builds a single-store workload for engine benchmarks.
func engineFixture(b *testing.B, n int) (*store.Store, object.ID) {
	b.Helper()
	st := store.New(1)
	d, err := workload.Build(benchPlacer{st}, workload.Spec{N: n, Machines: 1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return st, d.Root
}

type benchPlacer struct{ st *store.Store }

func (p benchPlacer) Sites() []object.SiteID                      { return []object.SiteID{1} }
func (p benchPlacer) Store(object.SiteID) *store.Store            { return p.st }
func (p benchPlacer) Put(_ object.SiteID, o *object.Object) error { return p.st.Put(o) }

// BenchmarkEngineClosure measures raw engine throughput: one transitive
// closure + selection over 270 objects per iteration.
func BenchmarkEngineClosure(b *testing.B) {
	st, root := engineFixture(b, 270)
	compiled := query.MustCompile(workload.ClosureQuery("Rand80", "Rand10", 5))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := engine.New(compiled, st)
		e.AddInitial(root)
		e.Run()
	}
}

// BenchmarkEngineSelection measures flat selection over the whole store.
func BenchmarkEngineSelection(b *testing.B) {
	st, _ := engineFixture(b, 270)
	ids := st.IDs()
	compiled := query.MustCompile(`S (Rand100, 1..50, ?) -> T`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := engine.New(compiled, st)
		e.AddInitial(ids...)
		e.Run()
	}
}

// BenchmarkQueryParse measures the parser on the experimental query.
func BenchmarkQueryParse(b *testing.B) {
	src := workload.ClosureQuery("Tree", "Rand10", 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := query.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireEncodeDeref measures encoding the ~80-byte deref message.
func BenchmarkWireEncodeDeref(b *testing.B) {
	m := &wire.Deref{
		QID: wire.QueryID{Origin: 1, Seq: 7}, Origin: 1,
		Body:   workload.ClosureQuery("Tree", "Rand10", 5),
		ObjIDs: []object.ID{{Birth: 3, Seq: 99}}, Start: 2, Iters: []int{4},
		Token: make([]byte, 12),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire.Encode(m)
	}
}

// BenchmarkWireDecodeDeref measures decoding the same message.
func BenchmarkWireDecodeDeref(b *testing.B) {
	m := &wire.Deref{
		QID: wire.QueryID{Origin: 1, Seq: 7}, Origin: 1,
		Body:   workload.ClosureQuery("Tree", "Rand10", 5),
		ObjIDs: []object.ID{{Birth: 3, Seq: 99}}, Start: 2, Iters: []int{4},
		Token: make([]byte, 12),
	}
	data := wire.Encode(m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wire.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKeywordIndexLookup measures inverted-index lookups.
func BenchmarkKeywordIndexLookup(b *testing.B) {
	st, _ := engineFixture(b, 270)
	ix := index.BuildKeyword(st)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Lookup("Rand10", fmt.Sprint(i%10+1))
	}
}

// BenchmarkReachIndexBuild measures closure-index construction (amortized
// over many queries in practice).
func BenchmarkReachIndexBuild(b *testing.B) {
	st, _ := engineFixture(b, 270)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		index.BuildReach(st, "Rand80")
	}
}

// BenchmarkStorePut measures object ingestion.
func BenchmarkStorePut(b *testing.B) {
	st := store.New(1)
	o := st.NewObject().
		Add("String", object.String("Title"), object.String("doc")).
		Add("keyword", object.Keyword("db"), object.Value{}).
		Add("Pointer", object.String("Ref"), object.Pointer(object.ID{Birth: 1, Seq: 1}))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Put(o); err != nil {
			b.Fatal(err)
		}
	}
}
