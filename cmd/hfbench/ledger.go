package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"time"

	"hyperfile/internal/bench"
)

// runLedger measures the canonical allocation suites, writes the timestamped
// JSON ledger, and applies the two gates: the within-run ≥30% allocation
// reduction on every gated suite, and — when a baseline is given — no
// allocation regression beyond the noise bars documented in
// benchmarks/README.md. ns/op is recorded but never gated.
func runLedger(out, baselinePath, textPath string) int {
	fmt.Fprintln(os.Stderr, "running allocation-ledger suites (each variant benchmarks for ~1s)...")
	l := bench.RunLedger()
	l.Timestamp = time.Now().UTC().Format(time.RFC3339)
	l.GitSHA = gitSHA()

	b, err := json.MarshalIndent(l, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "hfbench:", err)
		return 1
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "hfbench:", err)
		return 1
	}

	table := l.Table()
	fmt.Fprint(os.Stderr, table)
	if textPath != "" {
		header := fmt.Sprintf("hyperfile allocation ledger — %s — %s — %s\n\n",
			l.Timestamp, l.GitSHA, l.GoVersion)
		if err := os.WriteFile(textPath, []byte(header+table), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "hfbench:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", textPath)
	}

	code := 0
	if bad := l.Gate(); len(bad) > 0 {
		for _, msg := range bad {
			fmt.Fprintln(os.Stderr, "hfbench: allocation gate:", msg)
		}
		code = 1
	}
	if baselinePath != "" {
		raw, err := os.ReadFile(baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hfbench:", err)
			return 1
		}
		var base bench.Ledger
		if err := json.Unmarshal(raw, &base); err != nil {
			fmt.Fprintf(os.Stderr, "hfbench: %s: %v\n", baselinePath, err)
			return 1
		}
		failures, notes := l.DiffBaseline(&base)
		for _, n := range notes {
			fmt.Fprintln(os.Stderr, "hfbench: note:", n)
		}
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "hfbench: baseline regression:", f)
		}
		if len(failures) > 0 {
			code = 1
		} else {
			fmt.Fprintf(os.Stderr, "baseline %s (%s): no allocation regressions\n",
				baselinePath, base.GitSHA)
		}
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", out)
	return code
}

// gitSHA stamps the ledger with the commit it measured: CI's GITHUB_SHA when
// set, otherwise the local HEAD, otherwise "unknown" (the ledger is still
// valid — the stamp is provenance, not data).
func gitSHA() string {
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		return sha
	}
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}
