// Command hfbench regenerates the paper's evaluation (section 5): every
// in-text result table, Figure 4, and the ablations of the design decisions
// the paper discusses. All timing runs on the deterministic virtual-time
// simulator with the calibrated cost model, so output is identical across
// hosts and runs.
//
// Usage:
//
//	hfbench                  # run everything, text report
//	hfbench -exp E5          # one experiment
//	hfbench -queries 100     # the paper's full query count per data point
//	hfbench -md > EXPERIMENTS.generated.md
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"hyperfile/internal/bench"
	"hyperfile/internal/leaktest"
)

func main() {
	code := run()
	// Teardown check: a clean benchmark run must not strand goroutines —
	// the observability experiment in particular spins up real local
	// clusters, and a leak here means some site or transport survived its
	// Close.
	if code == 0 {
		if leaked := leaktest.Check(5 * time.Second); len(leaked) > 0 {
			fmt.Fprintf(os.Stderr, "hfbench: %d goroutine(s) still running after teardown:\n\n%s\n",
				len(leaked), strings.Join(leaked, "\n\n"))
			code = 1
		}
	}
	os.Exit(code)
}

func run() int {
	exp := flag.String("exp", "", "run only this experiment id (E1..E9, A1..A4)")
	objects := flag.Int("objects", 270, "dataset size (paper: 270)")
	queries := flag.Int("queries", 20, "randomized queries per data point (paper: 100)")
	seed := flag.Int64("seed", 1, "dataset seed")
	md := flag.Bool("md", false, "emit Markdown instead of text")
	csv := flag.Bool("csv", false, "emit machine-readable CSV (experiment,key,value) instead of text")
	svg := flag.String("svg", "", "also write Figure 4 as an SVG chart to this path (requires running E5)")
	list := flag.Bool("list", false, "list experiments and exit")
	obs := flag.String("observability", "", "measure metrics-layer overhead on a local cluster and write JSON here (runs only this)")
	batching := flag.String("batching", "", "compare deref batching off/on over the standard workloads and write JSON here (runs only this; exits 1 if batching does not cut scattered-tree messages at least 2x or changes any result)")
	batchSize := flag.Int("batch-size", 8, "deref batch size for -batching")
	plan := flag.String("plan", "", "compare plan cache and index pushdown off/on and write JSON here (runs only this; exits 1 if the cache does not cut repeated-body compiles at least 2x, pushdown does not cut scans at least 2x, or either changes any result)")
	planCache := flag.Int("plan-cache", 8, "plan-cache entries for -plan")
	workers := flag.String("workers", "", "sweep worker-pool widths over a concurrent scattered-tree batch and write JSON here (runs only this; exits 1 if workers=4 is not at least 1.8x faster than workers=1, a single query speeds up or slows down past 20%, or any width changes any result)")
	ledger := flag.String("ledger", "", "run the canonical allocation-ledger suites and write JSON here (runs only this; exits 1 if any gated suite's optimized variant allocates more than 70% of its paper-exact twin)")
	ledgerBase := flag.String("ledger-baseline", "", "with -ledger: also diff against this committed baseline ledger and exit 1 on any allocation regression beyond the noise bars")
	ledgerText := flag.String("ledger-text", "", "with -ledger: also write the human-readable results table to this path")
	flag.Parse()

	if *ledger != "" {
		return runLedger(*ledger, *ledgerBase, *ledgerText)
	}

	if *workers != "" {
		cfg := bench.Default()
		cfg.Objects = *objects
		cfg.Queries = *queries
		cfg.Seed = *seed
		r, err := bench.RunWorkers(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hfbench:", err)
			return 1
		}
		b, err := r.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "hfbench:", err)
			return 1
		}
		if err := os.WriteFile(*workers, b, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "hfbench:", err)
			return 1
		}
		code := 0
		for _, row := range r.Rows {
			fmt.Fprintf(os.Stderr, "workers=%d: %6d steps, makespan %7.1fs, %8.0f steps/s (%.2fx), match=%v\n",
				row.Workers, row.Steps, row.MakespanSec, row.StepsPerSec, row.Speedup, row.ResultsMatch)
			if !row.ResultsMatch {
				fmt.Fprintf(os.Stderr, "hfbench: workers=%d changed a result set\n", row.Workers)
				code = 1
			}
		}
		fmt.Fprintf(os.Stderr, "single query: workers=1 %.1fs vs widest pool %.1fs (ratio %.2f)\n",
			r.SingleMakespan1Sec, r.SingleMakespanNSec, r.SingleRatio)
		if w4 := r.Row(4); w4 == nil || w4.Speedup < 1.8 {
			fmt.Fprintln(os.Stderr, "hfbench: workers=4 did not step the batch at least 1.8x faster than workers=1")
			code = 1
		}
		// Per-context pinning: a lone query must neither speed up (a context
		// overlapped itself) nor slow down much (pool overhead).
		if r.SingleRatio < 0.8 || r.SingleRatio > 1.2 {
			fmt.Fprintf(os.Stderr, "hfbench: single-query makespan ratio %.2f outside [0.8, 1.2]\n", r.SingleRatio)
			code = 1
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *workers)
		return code
	}

	if *plan != "" {
		cfg := bench.Default()
		cfg.Objects = *objects
		cfg.Queries = *queries
		cfg.Seed = *seed
		r, err := bench.RunPlan(cfg, *planCache)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hfbench:", err)
			return 1
		}
		b, err := r.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "hfbench:", err)
			return 1
		}
		if err := os.WriteFile(*plan, b, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "hfbench:", err)
			return 1
		}
		code := 0
		for _, row := range r.Cache {
			fmt.Fprintf(os.Stderr, "%-15s compiles %4d -> %4d (%.2fx), hits %4d, rt %.1fs -> %.1fs (%.2fx), match=%v\n",
				row.Workload, row.CompilesOff, row.CompilesOn, row.CompileRatio,
				row.CacheHitsOn, row.AvgRTOffSec, row.AvgRTOnSec, row.Speedup, row.ResultsMatch)
			if !row.ResultsMatch {
				fmt.Fprintf(os.Stderr, "hfbench: plan cache changed the %s result set\n", row.Workload)
				code = 1
			}
		}
		for _, row := range r.Pushdown {
			fmt.Fprintf(os.Stderr, "%-15s scans %6d -> %6d (%.2fx), probes %5d, pruned %5d, match=%v\n",
				row.Workload, row.TuplesScannedOff, row.TuplesScannedOn, row.ScanRatio,
				row.IndexProbesOn, row.InitialPrunedOn, row.ResultsMatch)
			if !row.ResultsMatch {
				fmt.Fprintf(os.Stderr, "hfbench: index pushdown changed the %s result set\n", row.Workload)
				code = 1
			}
		}
		if rb := r.CacheRow("repeated_body"); rb == nil || rb.CompileRatio < 2.0 || rb.CacheHitsOn == 0 {
			fmt.Fprintln(os.Stderr, "hfbench: plan cache did not cut repeated-body compiles at least 2x")
			code = 1
		}
		if ss := r.PushdownRowByName("select_scan"); ss == nil || ss.ScanRatio < 2.0 {
			fmt.Fprintln(os.Stderr, "hfbench: index pushdown did not cut select-scan tuple scans at least 2x")
			code = 1
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *plan)
		return code
	}

	if *batching != "" {
		cfg := bench.Default()
		cfg.Objects = *objects
		cfg.Queries = *queries
		cfg.Seed = *seed
		r, err := bench.RunBatching(cfg, *batchSize)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hfbench:", err)
			return 1
		}
		b, err := r.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "hfbench:", err)
			return 1
		}
		if err := os.WriteFile(*batching, b, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "hfbench:", err)
			return 1
		}
		code := 0
		for _, row := range r.Rows {
			fmt.Fprintf(os.Stderr, "%-15s msgs %5d -> %5d (%.2fx), rt %.1fs -> %.1fs (%.2fx), match=%v\n",
				row.Workload, row.DerefMsgsOff, row.DerefMsgsOn, row.MsgRatio,
				row.AvgRTOffSec, row.AvgRTOnSec, row.Speedup, row.ResultsMatch)
			if !row.ResultsMatch {
				fmt.Fprintf(os.Stderr, "hfbench: batching changed the %s result set\n", row.Workload)
				code = 1
			}
		}
		if tree := r.Row("tree_scattered"); tree == nil || tree.MsgRatio < 2.0 {
			fmt.Fprintln(os.Stderr, "hfbench: batching did not cut scattered-tree Deref messages at least 2x")
			code = 1
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *batching)
		return code
	}

	if *obs != "" {
		r, err := bench.RunObservability(3, 60, 20, 3)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hfbench:", err)
			return 1
		}
		b, err := r.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "hfbench:", err)
			return 1
		}
		if err := os.WriteFile(*obs, b, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "hfbench:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "wrote %s (overhead %.2f%%)\n", *obs, r.OverheadPct)
		return 0
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return 0
	}

	cfg := bench.Default()
	cfg.Objects = *objects
	cfg.Queries = *queries
	cfg.Seed = *seed

	var reports []*bench.Report
	if *exp != "" {
		e, ok := bench.Get(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "hfbench: unknown experiment %q (try -list)\n", *exp)
			return 1
		}
		r, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hfbench:", err)
			return 1
		}
		reports = []*bench.Report{r}
	} else {
		var err error
		reports, err = bench.RunAll(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hfbench:", err)
			return 1
		}
	}

	if *svg != "" {
		wrote := false
		for _, r := range reports {
			if r.ID != "E5" {
				continue
			}
			chart, err := bench.RenderFigure4SVG(r)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hfbench:", err)
				return 1
			}
			if err := os.WriteFile(*svg, []byte(chart), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "hfbench:", err)
				return 1
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *svg)
			wrote = true
		}
		if !wrote {
			fmt.Fprintln(os.Stderr, "hfbench: -svg needs experiment E5 in the run")
			return 1
		}
	}

	if *csv {
		fmt.Println("experiment,key,value")
		for _, r := range reports {
			keys := make([]string, 0, len(r.Values))
			for k := range r.Values {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Printf("%s,%s,%g\n", r.ID, k, r.Values[k])
			}
		}
		return 0
	}
	if *md {
		fmt.Printf("## HyperFile evaluation (objects=%d, queries/point=%d, seed=%d)\n\n",
			cfg.Objects, cfg.Queries, cfg.Seed)
		for _, r := range reports {
			fmt.Println(r.Markdown())
		}
		return 0
	}
	fmt.Printf("HyperFile evaluation — objects=%d queries/point=%d seed=%d\n%s\n",
		cfg.Objects, cfg.Queries, cfg.Seed, strings.Repeat("-", 64))
	for _, r := range reports {
		fmt.Println(r.String())
	}
	return 0
}
