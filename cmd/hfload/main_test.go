package main

import (
	"testing"

	"hyperfile/internal/leaktest"
)

// TestMain fails the package if any test strands a goroutine; see
// internal/leaktest.
func TestMain(m *testing.M) {
	leaktest.Main(m)
}

func TestParseMultipliers(t *testing.T) {
	got, err := parseMultipliers("0.5, 1,2")
	if err != nil || len(got) != 3 || got[0] != 0.5 || got[2] != 2 {
		t.Fatalf("multipliers = %v, err %v", got, err)
	}
	for _, bad := range []string{"", "x", "1,-2", "0", "1,,2"} {
		if _, err := parseMultipliers(bad); err == nil {
			t.Errorf("parseMultipliers(%q): expected error", bad)
		}
	}
}

func TestUSRendering(t *testing.T) {
	if s := us(2048); s != "2.05ms" {
		t.Errorf("us(2048) = %q", s)
	}
	if s := us(0); s != "0s" {
		t.Errorf("us(0) = %q", s)
	}
}
