// Command hfload drives a local HyperFile cluster with open-loop Poisson
// arrivals and verifies the overload-safety contract: at any offered load —
// including well past capacity — every query either answers, returns an
// annotated partial, or is rejected with the typed admission error. Nothing
// hangs, nothing fails untyped, and answered latencies stay inside the
// deadline envelope.
//
// Unlike hfbench's virtual-time experiments this harness runs on the wall
// clock, so latency numbers vary by host; the gates are the bounded claims,
// not the magnitudes.
//
// Usage:
//
//	hfload                          # smoke run, human-readable table
//	hfload -out BENCH_load.json     # also write the machine-readable record
//	hfload -queries 256 -mult 0.5,1,2,4
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"hyperfile/internal/bench"
	"hyperfile/internal/leaktest"
	"hyperfile/internal/sim"
)

func main() {
	code := run()
	// A clean harness run must not strand goroutines: every query context,
	// site loop, sweeper, and client waiter has to wind down with the
	// cluster. A leak here is exactly the failure the harness hunts.
	if code == 0 {
		if leaked := leaktest.Check(5 * time.Second); len(leaked) > 0 {
			fmt.Fprintf(os.Stderr, "hfload: %d goroutine(s) still running after teardown:\n\n%s\n",
				len(leaked), strings.Join(leaked, "\n\n"))
			code = 1
		}
	}
	os.Exit(code)
}

func run() int {
	cfg := bench.DefaultLoad()
	machines := flag.Int("machines", cfg.Machines, "cluster size")
	objects := flag.Int("objects", cfg.Objects, "dataset size")
	seed := flag.Int64("seed", cfg.Seed, "dataset and arrival-schedule seed")
	maxInflight := flag.Int("max-inflight", cfg.MaxInflight, "per-site live-context bound")
	admissionQueue := flag.Int("admission-queue", cfg.AdmissionQueue, "per-site admission queue length")
	deadline := flag.Duration("query-deadline", cfg.QueryDeadline, "default per-query budget")
	workers := flag.Int("workers", cfg.Workers, "per-site stepping workers (0 or 1 = the paper's single stepper)")
	fairQuantum := flag.Int("fair-quantum", cfg.FairQuantum, "per-client DRR step credits per turn (0 = FIFO)")
	calibration := flag.Int("calibration", cfg.Calibration, "closed-loop queries for the capacity estimate")
	queries := flag.Int("queries", cfg.Queries, "open-loop arrivals per load point")
	mult := flag.String("mult", "0.5,1,2,4", "offered-load points as multiples of calibrated capacity")
	timeout := flag.Duration("timeout", cfg.Timeout, "client-side per-query deadline (the hang bound)")
	chaosOn := flag.Bool("chaos", cfg.Chaos, "run against the fault-injecting network (drop/dup/delay/reorder)")
	out := flag.String("out", "", "write the JSON record here (empty = stdout only)")
	scenarioOut := flag.String("scenario-out", "",
		"record each load point's exact arrival schedule as a simulator scenario at <prefix>-x<mult>.json (replay with hfsim -run)")
	flag.Parse()

	cfg.Machines, cfg.Objects, cfg.Seed = *machines, *objects, *seed
	cfg.MaxInflight, cfg.AdmissionQueue, cfg.QueryDeadline = *maxInflight, *admissionQueue, *deadline
	cfg.Workers, cfg.FairQuantum = *workers, *fairQuantum
	cfg.Calibration, cfg.Queries, cfg.Timeout, cfg.Chaos = *calibration, *queries, *timeout, *chaosOn
	var err error
	cfg.Multipliers, err = parseMultipliers(*mult)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hfload:", err)
		return 1
	}

	res, err := bench.RunLoad(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hfload:", err)
		return 1
	}
	printResult(res)
	if *out != "" {
		b, err := res.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "hfload:", err)
			return 1
		}
		if err := os.WriteFile(*out, b, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "hfload:", err)
			return 1
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if *scenarioOut != "" {
		// The schedule derives deterministically from (seed, multiplier,
		// calibrated rate), so the recorded spec reproduces the incident's
		// arrivals exactly — in virtual time, under hfsim.
		for _, pt := range res.Points {
			spec := bench.LoadScenario(cfg, pt.Multiplier, pt.TargetQPS)
			b, err := sim.MarshalSpec(spec)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hfload:", err)
				return 1
			}
			path := fmt.Sprintf("%s-x%g.json", *scenarioOut, pt.Multiplier)
			if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "hfload:", err)
				return 1
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
	if err := res.Check(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "hfload: GATE FAILED:", err)
		return 1
	}
	fmt.Println("overload gates passed: no hangs, no untyped errors, all latencies inside the deadline envelope")
	return 0
}

func parseMultipliers(spec string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(spec, ",") {
		m, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || m <= 0 {
			return nil, fmt.Errorf("bad load multiplier %q (want positive numbers, e.g. 0.5,1,2)", part)
		}
		out = append(out, m)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no load multipliers given")
	}
	return out, nil
}

func printResult(r *bench.LoadResult) {
	fmt.Printf("cluster: %d machines, %d objects, max-inflight %d, admission-queue %d, deadline %dms, workers %d, fair-quantum %d\n",
		r.Machines, r.Objects, r.MaxInflight, r.AdmissionQueue, r.QueryDeadlineMS, r.Workers, r.FairQuantum)
	fmt.Printf("calibrated capacity: %.0f qps (closed loop at the admission bound)\n\n", r.CapacityQPS)
	fmt.Printf("%6s %10s %8s %6s %8s %9s %7s %6s %10s %10s %10s\n",
		"load", "target", "offered", "ok", "partial", "rejected", "errors", "hangs", "p50", "p95", "p99")
	for _, p := range r.Points {
		fmt.Printf("%5.1fx %8.0f/s %8d %6d %8d %9d %7d %6d %10s %10s %10s\n",
			p.Multiplier, p.TargetQPS, p.Offered, p.OK, p.Partial, p.Rejected, p.Errors, p.Hangs,
			us(p.P50US), us(p.P95US), us(p.P99US))
	}
	fmt.Println()
}

// us renders a microsecond bucket bound as a human duration.
func us(v uint64) string {
	return time.Duration(v * uint64(time.Microsecond)).Round(10 * time.Microsecond).String()
}
