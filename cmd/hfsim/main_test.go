package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListShowsCorpus(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	for _, want := range []string{"hotspot-skew", "metro-scale", "cascading-partition"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list output missing %q", want)
		}
	}
}

func TestRunRecordReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "tiny.json")
	if err := os.WriteFile(spec, []byte(`{
		"name": "tiny", "seed": 5, "sites": 3,
		"topology": {"kind": "uniform"},
		"workload": {"kind": "regions", "objects": 200, "region_size": 50,
			"local_prob": 0.8, "count": 2, "arrival": "batch"}
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	trace := filepath.Join(dir, "tiny.trace.txt")

	var out, errOut strings.Builder
	if code := run([]string{"-run", spec, "-trace", trace}, &out, &errOut); code != 0 {
		t.Fatalf("run exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "2 completed") {
		t.Errorf("run report missing completions: %s", out.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-replay", trace}, &out, &errOut); code != 0 {
		t.Fatalf("replay exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "byte-identical") {
		t.Errorf("replay did not verify: %s", out.String())
	}
}

func TestReplayDetectsTampering(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "tiny.json")
	if err := os.WriteFile(spec, []byte(`{
		"name": "tiny", "seed": 5, "sites": 3,
		"topology": {"kind": "uniform"},
		"workload": {"kind": "regions", "objects": 200, "region_size": 50,
			"local_prob": 0.8, "count": 1, "arrival": "batch"}
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	trace := filepath.Join(dir, "tiny.trace.txt")
	var out, errOut strings.Builder
	if code := run([]string{"-run", spec, "-trace", trace}, &out, &errOut); code != 0 {
		t.Fatalf("run exit %d: %s", code, errOut.String())
	}
	b, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(b), "completed=1", "completed=9", 1)
	if tampered == string(b) {
		t.Fatal("tamper target not found in trace")
	}
	if err := os.WriteFile(trace, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-replay", trace}, &out, &errOut); code == 0 {
		t.Fatal("replay accepted a tampered trace")
	}
	if !strings.Contains(errOut.String(), "DIVERGES") {
		t.Errorf("tamper error missing divergence report: %s", errOut.String())
	}
}

func TestRunCorpusByName(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-run", "crash-partial"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "crash-partial:") {
		t.Errorf("report missing scenario name: %s", out.String())
	}
}

func TestNoArgsUsage(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Errorf("exit = %d, want 2 (usage)", code)
	}
}
