// Command hfsim runs, records, and replays declarative simulator scenarios.
// A scenario (internal/sim.Scenario) compiles to a deterministic virtual-time
// run; the recorded trace embeds the spec, so a trace file alone re-simulates
// the run byte-identically on any host.
//
// Usage:
//
//	hfsim -list                         # corpus scenarios with comments
//	hfsim -run hotspot-skew             # run a corpus scenario
//	hfsim -run my.json -trace out.txt   # run a spec file, record the trace
//	hfsim -replay out.txt               # re-simulate a trace, verify bytes
//	hfsim -verify                       # replay the whole corpus vs goldens
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"hyperfile/internal/cluster"
	"hyperfile/internal/scenarios"
	"hyperfile/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hfsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list    = fs.Bool("list", false, "list corpus scenarios")
		runName = fs.String("run", "", "scenario to run: a corpus name or a spec .json path")
		trace   = fs.String("trace", "", "with -run: write the recorded trace to this file")
		replay  = fs.String("replay", "", "re-simulate a recorded trace file and verify byte identity")
		verify  = fs.Bool("verify", false, "replay every corpus scenario against its golden trace")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch {
	case *list:
		return doList(stdout, stderr)
	case *runName != "":
		return doRun(*runName, *trace, stdout, stderr)
	case *replay != "":
		return doReplay(*replay, stdout, stderr)
	case *verify:
		return doVerify(stdout, stderr)
	}
	fs.Usage()
	return 2
}

func doList(stdout, stderr io.Writer) int {
	for _, name := range scenarios.Names() {
		spec, err := scenarios.Load(name)
		if err != nil {
			fmt.Fprintf(stderr, "hfsim: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "%-22s %d sites, %s/%d objects, %d queries\n    %s\n",
			name, spec.Sites, spec.Workload.Kind, spec.Workload.Objects,
			queryCount(spec), spec.Comment)
	}
	return 0
}

func queryCount(spec *sim.Scenario) int {
	if n := len(spec.Workload.Queries); n > 0 {
		return n
	}
	return spec.Workload.Count
}

// loadSpec resolves -run's argument: a corpus name, or a path to a spec file.
func loadSpec(nameOrPath string) (*sim.Scenario, error) {
	if strings.HasSuffix(nameOrPath, ".json") {
		b, err := os.ReadFile(nameOrPath)
		if err != nil {
			return nil, err
		}
		return sim.UnmarshalSpec(b)
	}
	return scenarios.Load(nameOrPath)
}

func doRun(nameOrPath, traceOut string, stdout, stderr io.Writer) int {
	spec, err := loadSpec(nameOrPath)
	if err != nil {
		fmt.Fprintf(stderr, "hfsim: %v\n", err)
		return 1
	}
	runRes, err := cluster.RunScenario(spec)
	if err != nil {
		fmt.Fprintf(stderr, "hfsim: %v\n", err)
		return 1
	}
	report(stdout, runRes)
	if traceOut != "" {
		rendered, err := runRes.Trace.Render()
		if err != nil {
			fmt.Fprintf(stderr, "hfsim: %v\n", err)
			return 1
		}
		if err := os.WriteFile(traceOut, rendered, 0o644); err != nil {
			fmt.Fprintf(stderr, "hfsim: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "trace written to %s\n", traceOut)
	}
	return 0
}

func doReplay(path string, stdout, stderr io.Writer) int {
	recorded, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(stderr, "hfsim: %v\n", err)
		return 1
	}
	spec, _, err := sim.ParseTrace(recorded)
	if err != nil {
		fmt.Fprintf(stderr, "hfsim: %v\n", err)
		return 1
	}
	runRes, err := cluster.RunScenario(spec)
	if err != nil {
		fmt.Fprintf(stderr, "hfsim: %v\n", err)
		return 1
	}
	report(stdout, runRes)
	rendered, err := runRes.Trace.Render()
	if err != nil {
		fmt.Fprintf(stderr, "hfsim: %v\n", err)
		return 1
	}
	if d := sim.DiffTraces(recorded, rendered); d != "" {
		fmt.Fprintf(stderr, "hfsim: replay DIVERGES from %s:\n%s\n", path, d)
		return 1
	}
	fmt.Fprintf(stdout, "replay of %s is byte-identical\n", path)
	return 0
}

func doVerify(stdout, stderr io.Writer) int {
	failed := 0
	for _, name := range scenarios.Names() {
		golden, err := scenarios.Golden(name)
		if err != nil {
			fmt.Fprintf(stderr, "hfsim: %v\n", err)
			failed++
			continue
		}
		spec, _, err := sim.ParseTrace(golden)
		if err != nil {
			fmt.Fprintf(stderr, "hfsim: %s: %v\n", name, err)
			failed++
			continue
		}
		runRes, err := cluster.RunScenario(spec)
		if err != nil {
			fmt.Fprintf(stderr, "hfsim: %s: %v\n", name, err)
			failed++
			continue
		}
		rendered, err := runRes.Trace.Render()
		if err != nil {
			fmt.Fprintf(stderr, "hfsim: %s: %v\n", name, err)
			failed++
			continue
		}
		if d := sim.DiffTraces(golden, rendered); d != "" {
			fmt.Fprintf(stderr, "hfsim: %s DIVERGES:\n%s\n", name, d)
			failed++
			continue
		}
		fmt.Fprintf(stdout, "%-22s ok (%v virtual, wall %v)\n",
			name, runRes.Final, runRes.Wall.Round(time.Millisecond))
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "hfsim: %d scenario(s) diverged\n", failed)
		return 1
	}
	return 0
}

func report(w io.Writer, r *cluster.ScenarioRun) {
	completed, rejected, lost, partial := 0, 0, 0, 0
	for _, q := range r.Queries {
		switch {
		case q.Lost:
			lost++
		case q.Rejected:
			rejected++
		default:
			completed++
			if q.Partial {
				partial++
			}
		}
	}
	fmt.Fprintf(w, "%s: %d queries (%d completed, %d partial, %d rejected, %d lost)\n",
		r.Spec.Name, len(r.Queries), completed, partial, rejected, lost)
	fmt.Fprintf(w, "  final %v virtual, %d inter-site messages, wall %v\n",
		r.Final, r.Messages, r.Wall.Round(time.Millisecond))
}
