package main

import (
	"log/slog"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hyperfile/internal/dump"
	"hyperfile/internal/object"
	"hyperfile/internal/server"
	"hyperfile/internal/store"
)

// TestRunServeQueryShutdownSnapshot boots a real hyperfiled via run(),
// queries it over TCP, shuts it down, and checks the exit snapshot.
func TestRunServeQueryShutdownSnapshot(t *testing.T) {
	dir := t.TempDir()

	// Dataset file: one object with a keyword.
	st := store.New(1)
	o := st.NewObject().Add("keyword", object.Keyword("net"), object.Value{})
	if err := st.Put(o); err != nil {
		t.Fatal(err)
	}
	dataPath := filepath.Join(dir, "data.jsonl")
	f, err := os.Create(dataPath)
	if err != nil {
		t.Fatal(err)
	}
	obj, _ := st.Get(o.ID)
	if err := dump.Write(f, []*object.Object{obj}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	savePath := filepath.Join(dir, "snapshot.jsonl")
	stop := make(chan os.Signal, 1)
	ready := make(chan string, 1)
	done := make(chan error, 1)
	lg := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelError}))
	go func() {
		done <- run(config{
			SiteID: 1, Listen: "127.0.0.1:0", Data: dataPath, Save: savePath,
			TermMode: "weighted",
		}, lg, stop, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	}

	cl, err := server.NewClient(500, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.AddServer(1, addr)
	cm, err := cl.Exec(1, `S (keyword, "net", ?) -> T`, []object.ID{o.ID}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(cm.IDs) != 1 {
		t.Errorf("results = %v", cm.IDs)
	}

	stop <- os.Interrupt
	if err := <-done; err != nil {
		t.Fatalf("run returned %v", err)
	}
	sf, err := os.Open(savePath)
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	objs, err := dump.Read(sf)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 1 || objs[0].ID != o.ID {
		t.Errorf("snapshot = %v", objs)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	lg := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelError}))
	stop := make(chan os.Signal)
	base := config{SiteID: 1, Listen: "127.0.0.1:0", TermMode: "weighted"}
	bad := base
	bad.Peers = "bogus-peers"
	if err := run(bad, lg, stop, nil); err == nil {
		t.Error("expected peer-spec error")
	}
	bad = base
	bad.Data = "/nonexistent/data"
	if err := run(bad, lg, stop, nil); err == nil {
		t.Error("expected data-file error")
	}
	bad = base
	bad.TermMode = "martian"
	if err := run(bad, lg, stop, nil); err == nil {
		t.Error("expected termination-mode error")
	}
	bad = base
	bad.ChaosDrop = 2
	if err := run(bad, lg, stop, nil); err == nil {
		t.Error("expected chaos-rate range error")
	}
	bad = base
	bad.ChaosReorder = -0.1
	if err := run(bad, lg, stop, nil); err == nil {
		t.Error("expected negative chaos-rate error")
	}
	bad = base
	bad.ChaosMaxDelay = -time.Millisecond
	if err := run(bad, lg, stop, nil); err == nil {
		t.Error("expected negative max-delay error")
	}
	bad = base
	bad.SuspectAfter = time.Second
	if err := run(bad, lg, stop, nil); err == nil {
		t.Error("expected suspect-after-without-heartbeat error")
	}
	bad = base
	bad.MaxInflight = -1
	if err := run(bad, lg, stop, nil); err == nil {
		t.Error("expected negative max-inflight error")
	}
	bad = base
	bad.AdmissionQueue = -4
	if err := run(bad, lg, stop, nil); err == nil {
		t.Error("expected negative admission-queue error")
	}
	bad = base
	bad.AdmissionQueue = 4
	if err := run(bad, lg, stop, nil); err == nil {
		t.Error("expected admission-queue-without-max-inflight error")
	}
	bad = base
	bad.QueryDeadline = -time.Second
	if err := run(bad, lg, stop, nil); err == nil {
		t.Error("expected negative query-deadline error")
	}
	bad = base
	bad.Workers = -2
	if err := run(bad, lg, stop, nil); err == nil {
		t.Error("expected negative workers error")
	}
	bad = base
	bad.FairQuantum = -1
	if err := run(bad, lg, stop, nil); err == nil {
		t.Error("expected negative fair-quantum error")
	}
}

// TestRunWorkerPoolFlags boots a server with a stepping pool and DRR
// fairness enabled and checks that queries still answer exactly — the flags
// wire through site.Config and the server spawns the extra step workers
// without perturbing results or shutdown.
func TestRunWorkerPoolFlags(t *testing.T) {
	st := store.New(1)
	o := st.NewObject().Add("keyword", object.Keyword("net"), object.Value{})
	if err := st.Put(o); err != nil {
		t.Fatal(err)
	}
	dataPath := filepath.Join(t.TempDir(), "data.jsonl")
	f, err := os.Create(dataPath)
	if err != nil {
		t.Fatal(err)
	}
	obj, _ := st.Get(o.ID)
	if err := dump.Write(f, []*object.Object{obj}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	stop := make(chan os.Signal, 1)
	ready := make(chan string, 1)
	done := make(chan error, 1)
	lg := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelError}))
	go func() {
		done <- run(config{
			SiteID: 1, Listen: "127.0.0.1:0", Data: dataPath, TermMode: "weighted",
			Workers: 4, FairQuantum: 2,
		}, lg, stop, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	}
	cl, err := server.NewClient(500, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.AddServer(1, addr)
	for i := 0; i < 4; i++ {
		cm, err := cl.Exec(1, `S (keyword, "net", ?) -> T`, []object.ID{o.ID}, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if len(cm.IDs) != 1 || cm.Partial {
			t.Errorf("query %d: ids %v partial %v", i, cm.IDs, cm.Partial)
		}
	}
	stop <- os.Interrupt
	if err := <-done; err != nil {
		t.Fatalf("run returned %v", err)
	}
}

// TestRunMemOptZeroCopyFlags boots a server with the hot-path memory
// overhaul on — packed mark tables, pooled scratch, and zero-copy inbound
// decode — and checks repeated queries still answer exactly: the flags wire
// through site.Config and the transport without changing a single result.
func TestRunMemOptZeroCopyFlags(t *testing.T) {
	st := store.New(1)
	o := st.NewObject().Add("keyword", object.Keyword("net"), object.Value{})
	if err := st.Put(o); err != nil {
		t.Fatal(err)
	}
	dataPath := filepath.Join(t.TempDir(), "data.jsonl")
	f, err := os.Create(dataPath)
	if err != nil {
		t.Fatal(err)
	}
	obj, _ := st.Get(o.ID)
	if err := dump.Write(f, []*object.Object{obj}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	stop := make(chan os.Signal, 1)
	ready := make(chan string, 1)
	done := make(chan error, 1)
	lg := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelError}))
	go func() {
		done <- run(config{
			SiteID: 1, Listen: "127.0.0.1:0", Data: dataPath, TermMode: "weighted",
			DerefBatch: 4, MemOpt: true, ZeroCopy: true,
		}, lg, stop, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	}
	cl, err := server.NewClient(500, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.AddServer(1, addr)
	// Several rounds so released read buffers are recycled between queries.
	for i := 0; i < 4; i++ {
		cm, err := cl.Exec(1, `S (keyword, "net", ?) -> T`, []object.ID{o.ID}, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if len(cm.IDs) != 1 || cm.Partial {
			t.Errorf("query %d: ids %v partial %v", i, cm.IDs, cm.Partial)
		}
	}
	stop <- os.Interrupt
	if err := <-done; err != nil {
		t.Fatalf("run returned %v", err)
	}
}

// TestRunOverloadFlags boots a server with admission control and a default
// deadline enabled and checks a within-bound query still answers exactly —
// the flags wire through site.Config without perturbing normal service.
func TestRunOverloadFlags(t *testing.T) {
	st := store.New(1)
	o := st.NewObject().Add("keyword", object.Keyword("net"), object.Value{})
	if err := st.Put(o); err != nil {
		t.Fatal(err)
	}
	dataPath := filepath.Join(t.TempDir(), "data.jsonl")
	f, err := os.Create(dataPath)
	if err != nil {
		t.Fatal(err)
	}
	obj, _ := st.Get(o.ID)
	if err := dump.Write(f, []*object.Object{obj}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	stop := make(chan os.Signal, 1)
	ready := make(chan string, 1)
	done := make(chan error, 1)
	lg := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelError}))
	go func() {
		done <- run(config{
			SiteID: 1, Listen: "127.0.0.1:0", Data: dataPath, TermMode: "weighted",
			MaxInflight: 4, AdmissionQueue: 8, QueryDeadline: 5 * time.Second,
		}, lg, stop, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	}
	cl, err := server.NewClient(500, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.AddServer(1, addr)
	cm, err := cl.Exec(1, `S (keyword, "net", ?) -> T`, []object.ID{o.ID}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(cm.IDs) != 1 || cm.Partial {
		t.Errorf("within-bound query: ids %v partial %v", cm.IDs, cm.Partial)
	}
	stop <- os.Interrupt
	if err := <-done; err != nil {
		t.Fatalf("run returned %v", err)
	}
}

// TestRunWithChaosAndHeartbeat boots a server with fault injection and the
// failure detector enabled; the reliability layer must still answer queries
// exactly.
func TestRunWithChaosAndHeartbeat(t *testing.T) {
	st := store.New(1)
	o := st.NewObject().Add("keyword", object.Keyword("net"), object.Value{})
	if err := st.Put(o); err != nil {
		t.Fatal(err)
	}
	dataPath := filepath.Join(t.TempDir(), "data.jsonl")
	f, err := os.Create(dataPath)
	if err != nil {
		t.Fatal(err)
	}
	obj, _ := st.Get(o.ID)
	if err := dump.Write(f, []*object.Object{obj}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	stop := make(chan os.Signal, 1)
	ready := make(chan string, 1)
	done := make(chan error, 1)
	lg := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelError}))
	go func() {
		done <- run(config{
			SiteID: 1, Listen: "127.0.0.1:0", Data: dataPath, TermMode: "weighted",
			Heartbeat: 50 * time.Millisecond,
			ChaosSeed: 99, ChaosDrop: 0.2, ChaosDup: 0.1,
			ChaosDelay: 0.3, ChaosMaxDelay: 2 * time.Millisecond,
		}, lg, stop, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	}
	cl, err := server.NewClient(500, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.AddServer(1, addr)
	cm, err := cl.Exec(1, `S (keyword, "net", ?) -> T`, []object.ID{o.ID}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(cm.IDs) != 1 {
		t.Errorf("results = %v", cm.IDs)
	}
	stop <- os.Interrupt
	if err := <-done; err != nil {
		t.Fatalf("run returned %v", err)
	}
}

func TestParsePeers(t *testing.T) {
	got, err := parsePeers("1=127.0.0.1:7001, 2=host:7002,3=h:1")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[1] != "127.0.0.1:7001" || got[2] != "host:7002" || got[3] != "h:1" {
		t.Errorf("peers = %v", got)
	}
	empty, err := parsePeers("")
	if err != nil || len(empty) != 0 {
		t.Errorf("empty spec: %v %v", empty, err)
	}
	for _, bad := range []string{"nope", "x=addr", "1", "=addr", "9999999999999999999=a"} {
		if _, err := parsePeers(bad); err == nil {
			t.Errorf("parsePeers(%q): expected error", bad)
		}
	}
}
