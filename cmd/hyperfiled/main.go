// Command hyperfiled runs one HyperFile server site over TCP.
//
// Usage:
//
//	hyperfiled -site 1 -listen 127.0.0.1:7001 \
//	    -peers "2=127.0.0.1:7002,3=127.0.0.1:7003" \
//	    -data data/site-1.jsonl
//
// Clients (hfquery) register themselves dynamically by including their own
// listen address in the peer list passed to every server they talk to, or
// statically via -peers.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"hyperfile/internal/dump"
	"hyperfile/internal/object"
	"hyperfile/internal/server"
	"hyperfile/internal/site"
	"hyperfile/internal/store"
	"hyperfile/internal/termination"
)

func main() {
	siteID := flag.Uint("site", 1, "this server's site id")
	listen := flag.String("listen", "127.0.0.1:0", "listen address")
	peerSpec := flag.String("peers", "", "comma-separated peer list: id=host:port,...")
	dataPath := flag.String("data", "", "JSON-lines object file to load at startup")
	savePath := flag.String("save", "", "write a snapshot of the store here on shutdown")
	batch := flag.Int("result-batch", 0, "max result ids per message (0 = unbounded)")
	distThreshold := flag.Int("dist-threshold", 0, "distributed-set retention threshold (0 = off)")
	termMode := flag.String("termination", "weighted", "termination detector: weighted | dijkstra-scholten")
	flag.Parse()

	lg := slog.New(slog.NewTextHandler(os.Stderr, nil))
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if err := run(*siteID, *listen, *peerSpec, *dataPath, *savePath, *batch, *distThreshold, *termMode, lg, stop, nil); err != nil {
		lg.Error("fatal", "err", err)
		os.Exit(1)
	}
}

// run starts the server and blocks until a signal arrives on stop. When
// ready is non-nil it receives the bound listen address once serving.
func run(siteID uint, listen, peerSpec, dataPath, savePath string, batch, distThreshold int, termMode string, lg *slog.Logger, stop <-chan os.Signal, ready chan<- string) error {
	id := object.SiteID(siteID)
	peers, err := parsePeers(peerSpec)
	if err != nil {
		return err
	}
	var mode termination.Mode
	switch termMode {
	case "weighted":
		mode = termination.Weighted
	case "dijkstra-scholten", "ds":
		mode = termination.DijkstraScholten
	default:
		return fmt.Errorf("unknown termination mode %q", termMode)
	}

	st := store.New(id)
	if dataPath != "" {
		f, err := os.Open(dataPath)
		if err != nil {
			return err
		}
		objs, err := dump.Read(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("loading %s: %w", dataPath, err)
		}
		for _, o := range objs {
			if err := st.Put(o); err != nil {
				return fmt.Errorf("loading %s: %w", dataPath, err)
			}
		}
		lg.Info("loaded dataset", "file", dataPath, "objects", len(objs))
	}

	peerIDs := make([]object.SiteID, 0, len(peers))
	for pid := range peers {
		peerIDs = append(peerIDs, pid)
	}
	srv, err := server.New(site.Config{
		ID: id, Store: st, Peers: peerIDs,
		ResultBatch: batch, DistributedSetThreshold: distThreshold,
		TermMode: mode,
	}, listen, lg)
	if err != nil {
		return err
	}
	defer srv.Close()
	for pid, addr := range peers {
		srv.AddPeer(pid, addr)
	}
	lg.Info("hyperfiled serving", "site", id.String(), "addr", srv.Addr(), "peers", len(peers))
	if ready != nil {
		ready <- srv.Addr()
	}
	<-stop
	lg.Info("shutting down")
	if savePath != "" {
		f, err := os.Create(savePath)
		if err != nil {
			return fmt.Errorf("snapshot: %w", err)
		}
		if err := st.Snapshot(f); err != nil {
			f.Close()
			return fmt.Errorf("snapshot: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("snapshot: %w", err)
		}
		lg.Info("snapshot written", "file", savePath, "objects", st.Len())
	}
	return nil
}

// parsePeers parses "1=host:port,2=host:port".
func parsePeers(spec string) (map[object.SiteID]string, error) {
	out := make(map[object.SiteID]string)
	if spec == "" {
		return out, nil
	}
	for _, part := range strings.Split(spec, ",") {
		idStr, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad peer %q (want id=host:port)", part)
		}
		n, err := strconv.ParseUint(idStr, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad peer id %q: %v", idStr, err)
		}
		out[object.SiteID(n)] = addr
	}
	return out, nil
}
