// Command hyperfiled runs one HyperFile server site over TCP.
//
// Usage:
//
//	hyperfiled -site 1 -listen 127.0.0.1:7001 \
//	    -peers "2=127.0.0.1:7002,3=127.0.0.1:7003" \
//	    -data data/site-1.jsonl
//
// Clients (hfquery) register themselves dynamically by including their own
// listen address in the peer list passed to every server they talk to, or
// statically via -peers.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hyperfile/internal/chaos"
	"hyperfile/internal/dump"
	"hyperfile/internal/index"
	"hyperfile/internal/object"
	"hyperfile/internal/server"
	"hyperfile/internal/site"
	"hyperfile/internal/store"
	"hyperfile/internal/termination"
)

// config collects everything run needs; flags map onto it one to one.
type config struct {
	SiteID        uint
	Listen        string
	Peers         string
	Data          string
	Save          string
	ResultBatch   int
	DistThreshold int
	DerefBatch    int
	PlanCache     int
	Index         bool
	TermMode      string

	// Overload protection: bound live query contexts, queue (or reject)
	// Submits past the bound, and impose a default per-query time budget.
	MaxInflight    int
	AdmissionQueue int
	QueryDeadline  time.Duration

	// Parallel stepping and per-client fairness: Workers sizes the site's
	// stepping pool (0 or 1 = the paper's single stepper), FairQuantum
	// replaces FIFO scheduling with per-client deficit round robin.
	Workers     int
	FairQuantum int

	// Hot-path memory overhaul: MemOpt switches the site to packed mark
	// tables, pooled engine scratch, and the packed sent-cache; ZeroCopy
	// decodes inbound frames in place from pooled ref-counted read buffers.
	// Both default off (paper-exact); answers are byte-identical either way.
	MemOpt   bool
	ZeroCopy bool

	// MetricsAddr exposes /debug/hyperfile (metrics + query traces) over
	// HTTP when non-empty.
	MetricsAddr string

	// Failure detection: probe peers every Heartbeat, declare a peer down
	// after SuspectAfter of silence (0 disables the detector).
	Heartbeat    time.Duration
	SuspectAfter time.Duration

	// Fault injection below the reliability layer, for soak and recovery
	// testing. All zero = no faults.
	ChaosSeed     int64
	ChaosDrop     float64
	ChaosDup      float64
	ChaosDelay    float64
	ChaosMaxDelay time.Duration
	ChaosReorder  float64
}

func main() {
	var cfg config
	flag.UintVar(&cfg.SiteID, "site", 1, "this server's site id")
	flag.StringVar(&cfg.Listen, "listen", "127.0.0.1:0", "listen address")
	flag.StringVar(&cfg.Peers, "peers", "", "comma-separated peer list: id=host:port,...")
	flag.StringVar(&cfg.Data, "data", "", "JSON-lines object file to load at startup")
	flag.StringVar(&cfg.Save, "save", "", "write a snapshot of the store here on shutdown")
	flag.IntVar(&cfg.ResultBatch, "result-batch", 0, "max result ids per message (0 = unbounded)")
	flag.IntVar(&cfg.DistThreshold, "dist-threshold", 0, "distributed-set retention threshold (0 = off)")
	flag.IntVar(&cfg.DerefBatch, "deref-batch", 0, "max object ids per outgoing Deref message, with sender-side duplicate suppression (0 = one per message)")
	flag.IntVar(&cfg.PlanCache, "plan-cache", 0, "plan-cache entries: repeated query bodies reuse their compiled physical plan (0 = off)")
	flag.BoolVar(&cfg.Index, "index", false, "maintain a keyword index and push exact-match selections down to it")
	flag.StringVar(&cfg.TermMode, "termination", "weighted", "termination detector: weighted | dijkstra-scholten")
	flag.IntVar(&cfg.MaxInflight, "max-inflight", 0, "max live query contexts before admission control kicks in (0 = unbounded)")
	flag.IntVar(&cfg.AdmissionQueue, "admission-queue", 0, "Submits queued while at max-inflight before rejecting (0 = reject immediately)")
	flag.DurationVar(&cfg.QueryDeadline, "query-deadline", 0, "default per-query time budget; expired queries return annotated partials (0 = none)")
	flag.IntVar(&cfg.Workers, "workers", 0, "stepping-pool goroutines for this site (0 or 1 = single stepper)")
	flag.IntVar(&cfg.FairQuantum, "fair-quantum", 0, "per-client deficit-round-robin step credits per turn (0 = FIFO scheduling)")
	flag.BoolVar(&cfg.MemOpt, "mem-opt", false, "pooled hot-path memory: packed mark tables, pooled engine scratch, packed sent-cache (answers unchanged)")
	flag.BoolVar(&cfg.ZeroCopy, "zero-copy", false, "decode inbound frames in place from pooled read buffers instead of copying every field")
	flag.StringVar(&cfg.MetricsAddr, "metrics-addr", "", "serve /debug/hyperfile on this address (empty = off)")
	flag.DurationVar(&cfg.Heartbeat, "heartbeat", 0, "peer heartbeat interval (0 = no failure detector)")
	flag.DurationVar(&cfg.SuspectAfter, "suspect-after", 0, "silence before a peer is declared down (default 4x heartbeat)")
	flag.Int64Var(&cfg.ChaosSeed, "chaos-seed", 0, "fault-injection RNG seed (0 = from clock)")
	flag.Float64Var(&cfg.ChaosDrop, "chaos-drop", 0, "probability of dropping an outbound frame")
	flag.Float64Var(&cfg.ChaosDup, "chaos-dup", 0, "probability of duplicating an outbound frame")
	flag.Float64Var(&cfg.ChaosDelay, "chaos-delay", 0, "probability of delaying an outbound frame")
	flag.DurationVar(&cfg.ChaosMaxDelay, "chaos-max-delay", 10*time.Millisecond, "maximum injected delay")
	flag.Float64Var(&cfg.ChaosReorder, "chaos-reorder", 0, "probability of reordering an outbound frame")
	flag.Parse()

	lg := slog.New(slog.NewTextHandler(os.Stderr, nil))
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if err := run(cfg, lg, stop, nil); err != nil {
		lg.Error("fatal", "err", err)
		os.Exit(1)
	}
}

// run starts the server and blocks until a signal arrives on stop. When
// ready is non-nil it receives the bound listen address once serving.
func run(cfg config, lg *slog.Logger, stop <-chan os.Signal, ready chan<- string) error {
	id := object.SiteID(cfg.SiteID)
	peers, err := parsePeers(cfg.Peers)
	if err != nil {
		return err
	}
	var mode termination.Mode
	switch cfg.TermMode {
	case "weighted":
		mode = termination.Weighted
	case "dijkstra-scholten", "ds":
		mode = termination.DijkstraScholten
	default:
		return fmt.Errorf("unknown termination mode %q", cfg.TermMode)
	}
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"-chaos-drop", cfg.ChaosDrop},
		{"-chaos-dup", cfg.ChaosDup},
		{"-chaos-delay", cfg.ChaosDelay},
		{"-chaos-reorder", cfg.ChaosReorder},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("%s %v is not a probability (want 0..1)", r.name, r.v)
		}
	}
	if cfg.ChaosMaxDelay < 0 {
		return fmt.Errorf("-chaos-max-delay %v is negative", cfg.ChaosMaxDelay)
	}
	if cfg.SuspectAfter > 0 && cfg.Heartbeat <= 0 {
		return fmt.Errorf("-suspect-after needs -heartbeat (no probes, nothing to suspect)")
	}
	if cfg.MaxInflight < 0 {
		return fmt.Errorf("-max-inflight %d is negative", cfg.MaxInflight)
	}
	if cfg.AdmissionQueue < 0 {
		return fmt.Errorf("-admission-queue %d is negative", cfg.AdmissionQueue)
	}
	if cfg.AdmissionQueue > 0 && cfg.MaxInflight <= 0 {
		return fmt.Errorf("-admission-queue needs -max-inflight (nothing bounds admission, nothing queues)")
	}
	if cfg.QueryDeadline < 0 {
		return fmt.Errorf("-query-deadline %v is negative", cfg.QueryDeadline)
	}
	if cfg.Workers < 0 {
		return fmt.Errorf("-workers %d is negative", cfg.Workers)
	}
	if cfg.FairQuantum < 0 {
		return fmt.Errorf("-fair-quantum %d is negative", cfg.FairQuantum)
	}

	st := store.New(id)
	var ix *index.Keyword
	if cfg.Index {
		// Attach before loading so the backfill stays trivially empty and
		// every loaded object indexes through the store's Put hook.
		ix = index.NewKeyword()
		st.AttachIndex(ix)
	}
	if cfg.Data != "" {
		f, err := os.Open(cfg.Data)
		if err != nil {
			return err
		}
		objs, err := dump.Read(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("loading %s: %w", cfg.Data, err)
		}
		for _, o := range objs {
			if err := st.Put(o); err != nil {
				return fmt.Errorf("loading %s: %w", cfg.Data, err)
			}
		}
		lg.Info("loaded dataset", "file", cfg.Data, "objects", len(objs))
	}

	opts := server.Options{
		HeartbeatInterval: cfg.Heartbeat,
		SuspectAfter:      cfg.SuspectAfter,
	}
	opts.Transport.ZeroCopy = cfg.ZeroCopy
	if cfg.ChaosDrop > 0 || cfg.ChaosDup > 0 || cfg.ChaosDelay > 0 || cfg.ChaosReorder > 0 {
		opts.Transport.Fault = chaos.NewInjector(chaos.Config{
			Seed:        cfg.ChaosSeed,
			DropRate:    cfg.ChaosDrop,
			DupRate:     cfg.ChaosDup,
			DelayRate:   cfg.ChaosDelay,
			MaxDelay:    cfg.ChaosMaxDelay,
			ReorderRate: cfg.ChaosReorder,
		})
		lg.Warn("chaos fault injection enabled",
			"drop", cfg.ChaosDrop, "dup", cfg.ChaosDup,
			"delay", cfg.ChaosDelay, "reorder", cfg.ChaosReorder,
			"seed", cfg.ChaosSeed)
	}

	peerIDs := make([]object.SiteID, 0, len(peers))
	for pid := range peers {
		peerIDs = append(peerIDs, pid)
	}
	srv, err := server.NewOpts(site.Config{
		ID: id, Store: st, Peers: peerIDs,
		ResultBatch: cfg.ResultBatch, DistributedSetThreshold: cfg.DistThreshold,
		DerefBatch: cfg.DerefBatch, TermMode: mode,
		Index: ix, PlanCacheSize: cfg.PlanCache,
		MaxInflight: cfg.MaxInflight, AdmissionQueue: cfg.AdmissionQueue,
		QueryDeadline: cfg.QueryDeadline,
		Workers:       cfg.Workers, FairQuantum: cfg.FairQuantum,
		MemOpt: cfg.MemOpt,
	}, cfg.Listen, lg, opts)
	if err != nil {
		return err
	}
	defer srv.Close()
	for pid, addr := range peers {
		srv.AddPeer(pid, addr)
	}
	if cfg.MetricsAddr != "" {
		if _, err := srv.ServeDebug(cfg.MetricsAddr); err != nil {
			return fmt.Errorf("metrics endpoint: %w", err)
		}
	}
	lg.Info("hyperfiled serving", "site", id.String(), "addr", srv.Addr(), "peers", len(peers))
	if ready != nil {
		ready <- srv.Addr()
	}
	<-stop
	lg.Info("shutting down")
	if cfg.Save != "" {
		f, err := os.Create(cfg.Save)
		if err != nil {
			return fmt.Errorf("snapshot: %w", err)
		}
		if err := st.Snapshot(f); err != nil {
			f.Close()
			return fmt.Errorf("snapshot: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("snapshot: %w", err)
		}
		lg.Info("snapshot written", "file", cfg.Save, "objects", st.Len())
	}
	return nil
}

// parsePeers parses "1=host:port,2=host:port".
func parsePeers(spec string) (map[object.SiteID]string, error) {
	out := make(map[object.SiteID]string)
	if spec == "" {
		return out, nil
	}
	for _, part := range strings.Split(spec, ",") {
		idStr, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad peer %q (want id=host:port)", part)
		}
		n, err := strconv.ParseUint(idStr, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad peer id %q: %v", idStr, err)
		}
		out[object.SiteID(n)] = addr
	}
	return out, nil
}
