package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hyperfile/internal/object"
	"hyperfile/internal/server"
	"hyperfile/internal/site"
	"hyperfile/internal/store"
)

// TestRunEndToEnd drives the hfquery client logic against a live in-process
// two-site deployment, covering single queries and script mode.
func TestRunEndToEnd(t *testing.T) {
	stores := []*store.Store{store.New(1), store.New(2)}
	var servers []*server.Server
	for i, st := range stores {
		id := object.SiteID(i + 1)
		peer := object.SiteID(2 - i)
		srv, err := server.New(site.Config{ID: id, Store: st, Peers: []object.SiteID{peer}},
			"127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		servers = append(servers, srv)
	}
	servers[0].AddPeer(2, servers[1].Addr())
	servers[1].AddPeer(1, servers[0].Addr())

	a := stores[0].NewObject().Add("keyword", object.Keyword("hot"), object.Value{})
	b := stores[1].NewObject().Add("keyword", object.Keyword("hot"), object.Value{})
	a.Add("Pointer", object.String("Ref"), object.Pointer(b.ID))
	if err := stores[0].Put(a); err != nil {
		t.Fatal(err)
	}
	if err := stores[1].Put(b); err != nil {
		t.Fatal(err)
	}

	serverSpec := fmt.Sprintf("1=%s,2=%s", servers[0].Addr(), servers[1].Addr())
	var out strings.Builder
	err := run(&out, serverSpec, 1, 900, "127.0.0.1:0", a.ID.String(), "",
		0, 10*time.Second, false, []string{`S (Pointer, "Ref", ?X) ^^X (keyword, "hot", ?) -> T`})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "2 results") {
		t.Errorf("output = %q", out.String())
	}

	// Script mode with per-line initial sets.
	script := filepath.Join(t.TempDir(), "queries.hfq")
	content := "# comment\n" +
		a.ID.String() + ` | S (keyword, "hot", ?) -> T` + "\n" +
		"\n" +
		b.ID.String() + ` | S (keyword, "hot", ?) -> U` + "\n"
	if err := os.WriteFile(script, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	err = run(&out, serverSpec, 2, 901, "127.0.0.1:0", "", script, 0, 10*time.Second, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out.String(), "1 results"); got != 2 {
		t.Errorf("script output = %q (want two single-result queries)", out.String())
	}

	// Administration mode: server counters.
	out.Reset()
	err = run(&out, serverSpec, 1, 902, "127.0.0.1:0", "", "", 0, 10*time.Second, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "objects_processed") ||
		strings.Count(out.String(), "site s") != 2 {
		t.Errorf("stats output = %q", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run(&out, "", 1, 902, "127.0.0.1:0", "", "", 0, time.Second, false, []string{"q"}); err == nil {
		t.Error("expected no-servers error")
	}
	if err := run(&out, "1=127.0.0.1:1", 1, 903, "127.0.0.1:0", "bogus", "", 0, time.Second, false, []string{"q"}); err == nil {
		t.Error("expected bad-initial error")
	}
	if err := run(&out, "1=127.0.0.1:1", 1, 904, "127.0.0.1:0", "", "", 0, time.Second, false, nil); err == nil {
		t.Error("expected no-query error")
	}
}

func TestExplainQuery(t *testing.T) {
	var out strings.Builder
	err := explainQuery(&out, []string{`S [ (p, "Ref", ?X) ^^X ]** (k, "x", ?) -> T`})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "transitive closure") {
		t.Errorf("explain output = %q", out.String())
	}
	if err := explainQuery(&out, nil); err == nil {
		t.Error("expected no-query error")
	}
	if err := explainQuery(&out, []string{"garbage"}); err == nil {
		t.Error("expected parse error")
	}
	if err := explainQuery(&out, []string{"S ^X -> T"}); err == nil {
		t.Error("expected compile error")
	}
}

func TestParseServers(t *testing.T) {
	got, err := parseServers("1=a:1,2=b:2")
	if err != nil || len(got) != 2 || got[2] != "b:2" {
		t.Errorf("servers = %v, err %v", got, err)
	}
	if _, err := parseServers("bogus"); err == nil {
		t.Error("expected error")
	}
	if _, err := parseServers("x=a:1"); err == nil {
		t.Error("expected bad-id error")
	}
}

func TestParseIDs(t *testing.T) {
	ids, err := parseIDs("s1:1, s2:7")
	if err != nil || len(ids) != 2 {
		t.Fatalf("ids = %v, err %v", ids, err)
	}
	if ids[1].Birth != 2 || ids[1].Seq != 7 {
		t.Errorf("ids[1] = %v", ids[1])
	}
	none, err := parseIDs("")
	if err != nil || none != nil {
		t.Errorf("empty spec: %v %v", none, err)
	}
	if _, err := parseIDs("junk"); err == nil {
		t.Error("expected error")
	}
}
