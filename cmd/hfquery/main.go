// Command hfquery submits filtering queries to a running HyperFile service.
// Like the paper's experimental client it runs at its own endpoint, separate
// from every server; results come back directly from the originating site.
//
// Usage:
//
//	hfquery -servers "1=127.0.0.1:7001,2=127.0.0.1:7002" -origin 1 \
//	    -initial s1:1 'S [ (Pointer, "Tree", ?X) ^^X ]** (Rand10, 5, ?) -> T'
//
// With -script FILE, queries are read one per line instead (lines starting
// with '#' are comments); each line may be prefixed with "initial-ids |".
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"hyperfile/internal/object"
	"hyperfile/internal/query"
	"hyperfile/internal/server"
	"hyperfile/internal/wire"
)

func main() {
	servers := flag.String("servers", "", "server list: id=host:port,...")
	origin := flag.Uint("origin", 1, "originating site id")
	clientID := flag.Uint("client", 1000, "this client's site id")
	listen := flag.String("listen", "127.0.0.1:0", "client listen address")
	initial := flag.String("initial", "", "comma-separated initial object ids (s1:1,s1:2)")
	script := flag.String("script", "", "file of queries, one per line")
	timeout := flag.Duration("timeout", 30*time.Second, "per-query deadline")
	budget := flag.Duration("budget", 0, "server-side time budget riding the Submit; expired queries return annotated partials (0 = none)")
	stats := flag.Bool("stats", false, "print each server's counters and exit")
	explain := flag.Bool("explain", false, "print the query's execution plan and exit (no servers needed)")
	migrate := flag.String("migrate", "", "live-migrate an object: 'id=site' (e.g. s2:5=3)")
	flag.Parse()

	if *explain {
		if err := explainQuery(os.Stdout, flag.Args()); err != nil {
			fmt.Fprintln(os.Stderr, "hfquery:", err)
			os.Exit(1)
		}
		return
	}
	if *migrate != "" {
		if err := runMigrate(os.Stdout, *servers, *clientID, *listen, *migrate, *timeout); err != nil {
			fmt.Fprintln(os.Stderr, "hfquery:", err)
			os.Exit(1)
		}
		return
	}
	if *budget < 0 {
		fmt.Fprintln(os.Stderr, "hfquery: -budget is negative")
		os.Exit(1)
	}
	if err := run(os.Stdout, *servers, *origin, *clientID, *listen, *initial, *script, *budget, *timeout, *stats, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "hfquery:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, servers string, origin, clientID uint, listen, initial, script string, budget, timeout time.Duration, stats bool, args []string) error {
	addrs, err := parseServers(servers)
	if err != nil {
		return err
	}
	if len(addrs) == 0 {
		return fmt.Errorf("no servers given (use -servers)")
	}
	cl, err := server.NewClient(object.SiteID(clientID), listen)
	if err != nil {
		return err
	}
	defer cl.Close()
	for id, addr := range addrs {
		cl.AddServer(id, addr)
	}
	if stats {
		// Administration mode: print each server's counters (the request
		// carries the client's address, so servers need no configuration).
		for id := range addrs {
			resp, err := cl.Stats(id, timeout)
			if err != nil {
				return fmt.Errorf("stats from %v: %w", id, err)
			}
			fmt.Fprintf(w, "site %s: %d objects, %d live query contexts\n",
				resp.Site, resp.Objects, resp.Contexts)
			for _, c := range resp.Counters {
				fmt.Fprintf(w, "  %-20s %d\n", c.Name, c.Value)
			}
		}
		return nil
	}

	// Servers learn the client's address from the Submit message itself, so
	// no server-side configuration is needed for clients.
	defaultInitial, err := parseIDs(initial)
	if err != nil {
		return err
	}

	exec := func(body string, init []object.ID) error {
		start := time.Now()
		cm, err := cl.ExecBudget(object.SiteID(origin), body, init, budget, timeout)
		if errors.Is(err, server.ErrTimeout) && cm != nil {
			// The deadline passed but the abort recovered a partial answer;
			// print it rather than throw it away.
			fmt.Fprintf(w, "timed out after %v; partial answer recovered:\n", timeout)
			printResult(w, body, cm, time.Since(start))
			return nil
		}
		if errors.Is(err, server.ErrRejected) {
			// Admission control refused the query outright; say so in the
			// server's words rather than a bare exit.
			return fmt.Errorf("rejected by site %d: %w", origin, err)
		}
		if err != nil {
			return err
		}
		printResult(w, body, cm, time.Since(start))
		return nil
	}

	if script != "" {
		f, err := os.Open(script)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		line := 0
		for sc.Scan() {
			line++
			text := strings.TrimSpace(sc.Text())
			if text == "" || strings.HasPrefix(text, "#") {
				continue
			}
			init := defaultInitial
			if ids, rest, ok := strings.Cut(text, "|"); ok && !strings.Contains(ids, "(") {
				parsed, err := parseIDs(strings.TrimSpace(ids))
				if err != nil {
					return fmt.Errorf("line %d: %w", line, err)
				}
				init, text = parsed, strings.TrimSpace(rest)
			}
			if err := exec(text, init); err != nil {
				return fmt.Errorf("line %d: %w", line, err)
			}
		}
		return sc.Err()
	}

	if len(args) == 0 {
		return fmt.Errorf("no query given")
	}
	return exec(strings.Join(args, " "), defaultInitial)
}

// runMigrate performs a live object migration: spec is "id=site".
func runMigrate(w io.Writer, servers string, clientID uint, listen, spec string, timeout time.Duration) error {
	idStr, siteStr, ok := strings.Cut(spec, "=")
	if !ok {
		return fmt.Errorf("bad -migrate spec %q (want id=site, e.g. s2:5=3)", spec)
	}
	id, err := object.ParseID(strings.TrimSpace(idStr))
	if err != nil {
		return err
	}
	siteNum, err := strconv.ParseUint(strings.TrimSpace(siteStr), 10, 32)
	if err != nil {
		return fmt.Errorf("bad destination site %q: %v", siteStr, err)
	}
	addrs, err := parseServers(servers)
	if err != nil {
		return err
	}
	if len(addrs) == 0 {
		return fmt.Errorf("no servers given (use -servers)")
	}
	cl, err := server.NewClient(object.SiteID(clientID), listen)
	if err != nil {
		return err
	}
	defer cl.Close()
	for sid, addr := range addrs {
		cl.AddServer(sid, addr)
	}
	if err := cl.Migrate(id, object.SiteID(siteNum), timeout); err != nil {
		return err
	}
	fmt.Fprintf(w, "moved %s to site s%d\n", id, siteNum)
	return nil
}

// explainQuery prints the compiled plan of the query in args.
func explainQuery(w io.Writer, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("no query given")
	}
	q, err := query.Parse(strings.Join(args, " "))
	if err != nil {
		return err
	}
	compiled, err := query.Compile(q)
	if err != nil {
		return err
	}
	_, err = io.WriteString(w, compiled.Explain())
	return err
}

func printResult(w io.Writer, body string, cm *wire.Complete, rt time.Duration) {
	fmt.Fprintf(w, "query: %s\n", body)
	flags := ""
	if cm.Partial {
		flags = " (PARTIAL)"
		if cm.Reason != "" {
			flags = fmt.Sprintf(" (PARTIAL: %s)", cm.Reason)
		}
	}
	if cm.Distributed {
		flags += " (distributed set)"
	}
	fmt.Fprintf(w, "%d results in %v%s\n", cm.Count, rt.Round(time.Millisecond), flags)
	if len(cm.Unreachable) > 0 {
		names := make([]string, len(cm.Unreachable))
		for i, s := range cm.Unreachable {
			names[i] = s.String()
		}
		fmt.Fprintf(w, "unreachable sites: %s\n", strings.Join(names, ", "))
	}
	for _, id := range cm.IDs {
		fmt.Fprintf(w, "  %s\n", id)
	}
	for _, f := range cm.Fetches {
		fmt.Fprintf(w, "  %s = %s  (from %s)\n", f.Var, f.Val, f.From)
	}
}

func parseServers(spec string) (map[object.SiteID]string, error) {
	out := make(map[object.SiteID]string)
	if spec == "" {
		return out, nil
	}
	for _, part := range strings.Split(spec, ",") {
		idStr, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad server %q (want id=host:port)", part)
		}
		n, err := strconv.ParseUint(idStr, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad server id %q: %v", idStr, err)
		}
		out[object.SiteID(n)] = addr
	}
	return out, nil
}

func parseIDs(spec string) ([]object.ID, error) {
	if spec == "" {
		return nil, nil
	}
	var out []object.ID
	for _, part := range strings.Split(spec, ",") {
		id, err := object.ParseID(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, id)
	}
	return out, nil
}
