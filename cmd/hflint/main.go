// Command hflint runs HyperFile's project-specific static analyzers over the
// module and reports diagnostics as file:line:col messages (or JSON with
// -json). It exits 0 when the tree is clean, 1 when any diagnostic survives
// suppression, and 2 when the module cannot be loaded or type-checked.
//
//	go run ./cmd/hflint ./...
//	go run ./cmd/hflint -json ./... | jq .
//	go run ./cmd/hflint -checks lockhold,wireswitch ./...
//	go run ./cmd/hflint -stale-ignores ./...
//
// Findings are suppressed in source with
//
//	// lint:ignore <check> <reason>
//
// on the flagged line or the line above it; the reason is mandatory. See
// docs/LINT.md for the analyzer catalogue.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"hyperfile/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	checks := flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	staleIgnores := flag.Bool("stale-ignores", false, "report lint:ignore directives that suppress nothing (always runs every analyzer)")
	root := flag.String("root", "", "module root to analyze (default: current module)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hflint [flags] [./...]\n\nruns HyperFile's static analyzers over the whole module.\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hflint:", err)
		os.Exit(2)
	}
	if *staleIgnores {
		// Staleness is only meaningful against the full analyzer set: a
		// directive for a check that did not run would look unused.
		if *checks != "" {
			fmt.Fprintln(os.Stderr, "hflint: -stale-ignores cannot be combined with -checks")
			os.Exit(2)
		}
		analyzers = lint.All()
	}

	dir := *root
	if dir == "" {
		dir, err = moduleRoot()
		if err != nil {
			fmt.Fprintln(os.Stderr, "hflint:", err)
			os.Exit(2)
		}
	}

	mod, err := lint.Load(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hflint: load:", err)
		os.Exit(2)
	}

	var diags []lint.Diagnostic
	if *staleIgnores {
		diags = lint.Stale(mod, analyzers)
	} else {
		diags = lint.Run(mod, analyzers)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "hflint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// selectAnalyzers resolves the -checks flag against the registry.
func selectAnalyzers(spec string) ([]*lint.Analyzer, error) {
	all := lint.All()
	if spec == "" {
		return all, nil
	}
	byName := map[string]*lint.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown check %q (use -list to see available checks)", name)
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no checks selected")
	}
	return out, nil
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(dir + "/go.mod"); err == nil {
			return dir, nil
		}
		parent := dir[:strings.LastIndex(dir, "/")+1]
		parent = strings.TrimSuffix(parent, "/")
		if parent == dir || parent == "" {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}
