package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"hyperfile/internal/dump"
)

func TestGenerateAndReload(t *testing.T) {
	dir := t.TempDir()
	if err := run(90, 3, 0, 7, 64, dir); err != nil {
		t.Fatal(err)
	}
	// Manifest sanity.
	mf, err := os.Open(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	var man Manifest
	if err := json.NewDecoder(mf).Decode(&man); err != nil {
		t.Fatal(err)
	}
	if man.Objects != 90 || man.Machines != 3 || len(man.Files) != 3 {
		t.Errorf("manifest = %+v", man)
	}
	if man.Root != "s1:1" {
		t.Errorf("root = %q", man.Root)
	}
	// Every site file loads and objects carry the expected tuples.
	total := 0
	for _, name := range man.Files {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		objs, err := dump.Read(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		total += len(objs)
		for _, o := range objs {
			if len(o.Find("Unique")) != 1 || len(o.Find("Common")) != 1 {
				t.Fatalf("%s: object %v missing search keys", name, o.ID)
			}
			if len(o.Pointers("Pointer", "Chain")) != 1 {
				t.Fatalf("%s: object %v missing chain pointer", name, o.ID)
			}
			body := o.Find("Text")
			if len(body) != 1 || len(body[0].Data.Bytes) != 64 {
				t.Fatalf("%s: object %v payload wrong: %v", name, o.ID, body)
			}
		}
	}
	if total != 90 {
		t.Errorf("total objects = %d", total)
	}
}

func TestRunRejectsBadDir(t *testing.T) {
	if err := run(10, 1, 0, 1, 0, "/dev/null/nope"); err == nil {
		t.Error("expected error for unwritable output dir")
	}
}
