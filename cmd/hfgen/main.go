// Command hfgen generates the paper's synthetic experimental dataset
// (section 5) and writes one JSON-lines object file per site plus a manifest
// describing the run, for loading into hyperfiled servers.
//
// Usage:
//
//	hfgen -objects 270 -machines 3 -seed 1 -out ./data
//
// produces ./data/site-1.jsonl ... site-N.jsonl and ./data/manifest.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"hyperfile/internal/dump"
	"hyperfile/internal/object"
	"hyperfile/internal/store"
	"hyperfile/internal/workload"
)

// Manifest records what hfgen produced.
type Manifest struct {
	Objects  int      `json:"objects"`
	Machines int      `json:"machines"`
	Seed     int64    `json:"seed"`
	Root     string   `json:"root"`
	Payload  int      `json:"payload_bytes"`
	Files    []string `json:"files"`
}

// storePlacer adapts per-site stores to the workload generator.
type storePlacer struct {
	sites  []object.SiteID
	stores map[object.SiteID]*store.Store
}

func (p *storePlacer) Sites() []object.SiteID             { return p.sites }
func (p *storePlacer) Store(s object.SiteID) *store.Store { return p.stores[s] }
func (p *storePlacer) Put(s object.SiteID, o *object.Object) error {
	return p.stores[s].Put(o)
}

func main() {
	objects := flag.Int("objects", workload.DefaultObjects, "number of objects")
	machines := flag.Int("machines", 3, "number of sites")
	structure := flag.Int("structure", 0, "logical machine count for graph structure (0 = machines)")
	seed := flag.Int64("seed", 1, "generation seed")
	payload := flag.Int("payload", 0, "opaque payload bytes per object")
	out := flag.String("out", "data", "output directory")
	flag.Parse()

	if err := run(*objects, *machines, *structure, *seed, *payload, *out); err != nil {
		fmt.Fprintln(os.Stderr, "hfgen:", err)
		os.Exit(1)
	}
}

func run(objects, machines, structure int, seed int64, payload int, out string) error {
	p := &storePlacer{stores: make(map[object.SiteID]*store.Store)}
	for i := 1; i <= machines; i++ {
		id := object.SiteID(i)
		p.sites = append(p.sites, id)
		// Disable blob spilling so payloads serialize in full.
		p.stores[id] = store.New(id, store.WithLargeThreshold(0))
	}
	d, err := workload.Build(p, workload.Spec{
		N: objects, Machines: machines, StructureMachines: structure,
		Seed: seed, PayloadBytes: payload,
	})
	if err != nil {
		return err
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	man := Manifest{
		Objects: objects, Machines: machines, Seed: seed,
		Root: d.Root.String(), Payload: payload,
	}
	for _, sid := range p.sites {
		st := p.stores[sid]
		var objs []*object.Object
		for _, id := range st.IDs() {
			if o, ok := st.Get(id); ok {
				objs = append(objs, o)
			}
		}
		name := fmt.Sprintf("site-%d.jsonl", sid)
		f, err := os.Create(filepath.Join(out, name))
		if err != nil {
			return err
		}
		if err := dump.Write(f, objs); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		man.Files = append(man.Files, name)
		fmt.Printf("wrote %s (%d objects)\n", filepath.Join(out, name), len(objs))
	}
	mf, err := os.Create(filepath.Join(out, "manifest.json"))
	if err != nil {
		return err
	}
	defer mf.Close()
	enc := json.NewEncoder(mf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&man); err != nil {
		return err
	}
	fmt.Printf("root object: %s\n", man.Root)
	return nil
}
