package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hyperfile/internal/metrics"
	"hyperfile/internal/server"
	"hyperfile/internal/site"
	"hyperfile/internal/wire"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestRenderGolden pins hfstat's human-readable report for a fixed snapshot.
// Run with -update after an intentional format change.
func TestRenderGolden(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("site_derefs_sent").Add(12)
	reg.Counter("transport_frames_retransmitted").Add(4)
	reg.Counter("termination_weight_splits").Add(7)
	reg.Gauge("site_live_contexts").Set(1)
	for _, v := range []uint64{3, 9, 15, 200} {
		reg.Histogram("site_step_us").Observe(v)
	}
	snap := server.DebugSnapshot{
		Site:    "s1",
		Metrics: reg.Snapshot(),
		Traces: []site.TraceEntry{
			{
				QID:      wire.QueryID{Origin: 1, Seq: 4},
				Body:     `S (keyword, "cold", ?) -> T`,
				Spans:    []wire.Span{{Site: 1, Seq: 1, Hop: 0, Filter: 0, In: 1, Out: 0, DurationUS: 3}},
				Duration: 800 * time.Microsecond,
			},
			{
				QID:  wire.QueryID{Origin: 1, Seq: 5},
				Body: `S [ (Pointer, "Reference", ?X) ^^X ]** (keyword, "hot", ?) -> T`,
				Spans: []wire.Span{
					{Site: 1, Seq: 1, Hop: 0, Filter: 0, In: 6, Out: 3, DurationUS: 21},
					{Site: 2, Seq: 1, Hop: 1, Filter: 0, In: 5, Out: 2, DurationUS: 17},
					{Site: 3, Seq: 1, Hop: 2, Filter: 1, In: 2, Out: 2, DurationUS: 9},
				},
				Partial:  true,
				Duration: 2300 * time.Microsecond,
			},
		},
	}
	var b strings.Builder
	render(&b, snap, 1) // cap at 1: only the most recent trace renders
	got := b.String()

	golden := filepath.Join("testdata", "render.golden.txt")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("render output changed.\n--- got ---\n%s\n--- want ---\n%s\nRun with -update if intentional.", got, want)
	}
	// The capped report must show the partial closure trace, not the older one.
	if !strings.Contains(got, "traces (1 of 2):") || !strings.Contains(got, "q5@s1  partial") {
		t.Errorf("unexpected trace selection:\n%s", got)
	}
}
