// Command hfstat fetches a server's /debug/hyperfile snapshot and renders
// it for a terminal: counters, gauges, latency histograms, and the most
// recent cross-site query traces.
//
// Usage:
//
//	hfstat -addr 127.0.0.1:7071            # human-readable
//	hfstat -addr 127.0.0.1:7071 -json      # raw snapshot JSON
//	hfstat -addr 127.0.0.1:7071 -traces 3  # show at most 3 traces
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"time"

	"hyperfile/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7071", "debug endpoint address (host:port)")
	raw := flag.Bool("json", false, "print the raw JSON snapshot")
	nTraces := flag.Int("traces", 5, "max traces to render (-1 = all)")
	timeout := flag.Duration("timeout", 5*time.Second, "HTTP timeout")
	flag.Parse()

	if err := run(os.Stdout, *addr, *raw, *nTraces, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "hfstat:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, addr string, raw bool, nTraces int, timeout time.Duration) error {
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(fmt.Sprintf("http://%s/debug/hyperfile", addr))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /debug/hyperfile: %s", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if raw {
		_, err := w.Write(body)
		return err
	}
	var snap server.DebugSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		return fmt.Errorf("decoding snapshot: %w", err)
	}
	render(w, snap, nTraces)
	return nil
}

// render writes the human-readable report. It is deterministic for a given
// snapshot (names sorted), which the golden test relies on.
func render(w io.Writer, snap server.DebugSnapshot, nTraces int) {
	fmt.Fprintf(w, "site %s\n", snap.Site)

	if len(snap.Metrics.Counters) > 0 {
		fmt.Fprintln(w, "counters:")
		for _, name := range sortedKeys(snap.Metrics.Counters) {
			fmt.Fprintf(w, "  %-34s %12d\n", name, snap.Metrics.Counters[name])
		}
	}
	if len(snap.Metrics.Gauges) > 0 {
		fmt.Fprintln(w, "gauges:")
		for _, name := range sortedKeys(snap.Metrics.Gauges) {
			fmt.Fprintf(w, "  %-34s %12d\n", name, snap.Metrics.Gauges[name])
		}
	}
	if len(snap.Metrics.Histograms) > 0 {
		fmt.Fprintln(w, "histograms:")
		for _, name := range sortedKeys(snap.Metrics.Histograms) {
			h := snap.Metrics.Histograms[name]
			fmt.Fprintf(w, "  %-34s count=%d mean=%.1f p50<=%d p99<=%d\n",
				name, h.Count, h.Mean(), h.Quantile(0.5), h.Quantile(0.99))
		}
	}

	traces := snap.Traces
	if nTraces >= 0 && len(traces) > nTraces {
		traces = traces[len(traces)-nTraces:] // most recent
	}
	if len(traces) == 0 {
		return
	}
	fmt.Fprintf(w, "traces (%d of %d):\n", len(traces), len(snap.Traces))
	for _, tr := range traces {
		status := "complete"
		if tr.Partial {
			status = "partial"
		}
		fmt.Fprintf(w, "  %s  %s  %s  %d spans\n",
			tr.QID, status, tr.Duration.Round(time.Microsecond), len(tr.Spans))
		for _, sp := range tr.Spans {
			fmt.Fprintf(w, "    hop %d  %s  filter %d  in %d  out %d  %dus\n",
				sp.Hop, sp.Site, sp.Filter, sp.In, sp.Out, sp.DurationUS)
		}
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
