package hyperfile

import (
	"fmt"

	"hyperfile/internal/engine"
	"hyperfile/internal/object"
	"hyperfile/internal/query"
)

// PreparedQuery is the embedded-language binding of the paper's section 2:
// the "->" retrieval operator binds fields into variables of the host
// program, and application code runs for each retrieved value — the Go
// equivalent of the paper's embedded-C sketch:
//
//	n := 1
//	pq, _ := db.Prepare(`S (String, "Author", "Chris Clifton")
//	                       (String, "Title", ->title) -> T`)
//	pq.OnFetch("title", func(v hyperfile.Value, from hyperfile.ID) {
//	    fmt.Printf("Title %d: %s\n", n, v.Str); n++
//	})
//	results, _ := pq.Run([]hyperfile.ID{s})
//
// A prepared query may be Run many times; handlers persist across runs.
type PreparedQuery struct {
	db       *DB
	compiled *query.Compiled
	onFetch  map[string]func(Value, ID)
	onResult func(ID)
	parallel int
}

// Prepare parses and compiles a query for repeated execution against db.
func (db *DB) Prepare(src string) (*PreparedQuery, error) {
	q, err := query.Parse(src)
	if err != nil {
		return nil, err
	}
	compiled, err := query.Compile(q)
	if err != nil {
		return nil, err
	}
	return &PreparedQuery{
		db:       db,
		compiled: compiled,
		onFetch:  make(map[string]func(Value, ID)),
	}, nil
}

// OnFetch registers a handler for one "->name" retrieval binding. It
// returns the prepared query for chaining. Registering a name the query
// never fetches is an error at Run time.
func (pq *PreparedQuery) OnFetch(name string, f func(val Value, from ID)) *PreparedQuery {
	pq.onFetch[name] = f
	return pq
}

// OnResult registers a handler invoked once per result-set member.
func (pq *PreparedQuery) OnResult(f func(ID)) *PreparedQuery {
	pq.onResult = f
	return pq
}

// Parallel sets the number of processors for shared-memory execution
// (section 6 of the paper); 0 or 1 means serial.
func (pq *PreparedQuery) Parallel(workers int) *PreparedQuery {
	pq.parallel = workers
	return pq
}

// Run executes the query over the initial set, invoking handlers, and
// returns the result set.
func (pq *PreparedQuery) Run(initial []ID) (IDSet, error) {
	for name := range pq.onFetch {
		found := false
		for _, v := range pq.compiled.FetchVars {
			if v == name {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("hyperfile: query fetches no binding %q (has %v)",
				name, pq.compiled.FetchVars)
		}
	}

	var (
		results IDSet
		fetches []engine.Fetch
	)
	if pq.parallel > 1 {
		out := engine.RunParallel(pq.compiled, pq.db.st, pq.parallel, initial)
		results, fetches = out.Results, out.Fetches
	} else {
		e := engine.New(pq.compiled, pq.db.st)
		e.AddInitial(initial...)
		e.Run()
		results, fetches = e.TakeResults()
	}
	for _, f := range fetches {
		if h, ok := pq.onFetch[f.Var]; ok {
			h(f.Val, f.From)
		}
	}
	if pq.onResult != nil {
		for _, id := range results.Sorted() {
			pq.onResult(id)
		}
	}
	return results, nil
}

// TraceEvent re-exports the engine's trace event for ExecTrace.
type TraceEvent = engine.TraceEvent

// ExecTrace runs a filtering query like Exec while streaming every
// processing step to the callback — dequeues, selection passes/failures,
// dereferences, iterator routing, results. Use it to debug queries that
// return fewer objects than expected (see docs/QUERYLANG.md).
func (db *DB) ExecTrace(src string, initial []ID, cb func(TraceEvent)) (IDSet, []Fetch, error) {
	q, err := query.Parse(src)
	if err != nil {
		return nil, nil, err
	}
	compiled, err := query.Compile(q)
	if err != nil {
		return nil, nil, err
	}
	e := engine.New(compiled, db.st, engine.WithTrace(cb))
	e.AddInitial(initial...)
	e.Run()
	results, fetches := e.TakeResults()
	return results, fetches, nil
}

// Explain returns the human-readable execution plan of a query, including
// warnings about closure-semantics hazards.
func Explain(src string) (string, error) {
	q, err := query.Parse(src)
	if err != nil {
		return "", err
	}
	compiled, err := query.Compile(q)
	if err != nil {
		return "", err
	}
	return compiled.Explain(), nil
}

// ExecParallel runs a filtering query with the shared-memory multiprocessor
// algorithm of the paper's conclusion: workers share the mark table and
// working set, and the answer is identical to serial execution.
func (db *DB) ExecParallel(src string, workers int, initial []ID) (IDSet, []Fetch, error) {
	q, err := query.Parse(src)
	if err != nil {
		return nil, nil, err
	}
	compiled, err := query.Compile(q)
	if err != nil {
		return nil, nil, err
	}
	out := engine.RunParallel(compiled, db.st, workers, initial)
	return out.Results, out.Fetches, nil
}

// AddBackPointers materializes reverse links, the application-level remedy
// the paper prescribes for backward chaining ("find all routines that call
// this one"): for every tuple (Pointer, key, ->target) in the store, the
// target object gains a tuple (Pointer, backKey, ->source). Existing
// back-pointer tuples with backKey are replaced, so the call is idempotent.
func (db *DB) AddBackPointers(key, backKey string) error {
	st := db.st
	back := make(map[object.ID][]object.ID) // target -> sources
	ids := st.IDs()
	for _, id := range ids {
		o, ok := st.Get(id)
		if !ok {
			continue
		}
		for _, tgt := range o.Pointers("Pointer", key) {
			back[tgt] = append(back[tgt], id)
		}
	}
	for _, id := range ids {
		// Materialize spilled data so the rewrite preserves it.
		o, ok := st.GetFull(id)
		if !ok {
			continue
		}
		updated := object.New(o.ID)
		for _, t := range o.Tuples {
			if t.Type == "Pointer" && t.Key.Text() == backKey {
				continue // drop stale back-pointers
			}
			updated.Tuples = append(updated.Tuples, t.Clone())
		}
		for _, src := range back[id] {
			updated.Add("Pointer", object.String(backKey), object.Pointer(src))
		}
		if err := st.Put(updated); err != nil {
			return err
		}
	}
	return nil
}
